// Chaos proof of session fault isolation (the tentpole acceptance test):
// a mixed population of sessions — healthy, crash-faulted, quota-runaway,
// drop-everything-deadlocked — runs through one Server, and
//
//   * the server never dies and resolves every admitted session;
//   * every healthy session completes bit-identical to a solo run of the
//     same request (resultDigest equality);
//   * every session, faulted or not, tears down hygienically: the fabric
//     drains to zero and the endpoint arena returns to empty;
//   * each fault class is classified as its own outcome, never leaking
//     into a neighbor's report.
//
// Runs under -DXDP_SANITIZE=thread via the `sanitize` ctest label.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "xdp/ckpt/io.hpp"
#include "xdp/serve/server.hpp"

namespace {

using namespace xdp;
using serve::SessionOutcome;

// 4-proc halo-exchange Jacobi (examples/programs/jacobi.xdp): enough
// communication that drops deadlock it and a crashed endpoint strands
// its neighbors.
const char* kJacobi = R"(
procs 4
array U  f64 [1:16] (BLOCK)
array HL f64 [0:3] (BLOCK)
array HR f64 [0:3] (BLOCK)

fill(U[1:16])
do t = 1, 3
  (mypid < nprocs - 1) : { U[4 * mypid + 4] -> {mypid + 1} }
  (mypid > 0) : { U[4 * mypid + 1] -> {mypid - 1} }
  (mypid > 0) : { HL[mypid] <- U[4 * mypid] }
  (mypid < nprocs - 1) : { HR[mypid] <- U[4 * mypid + 5] }
  (mypid > 0) : {
    await(HL[mypid])
    U[4 * mypid + 1] = 0.25 * HL[mypid] + 0.5 * U[4 * mypid + 1] + 0.25 * U[4 * mypid + 2]
  }
  (mypid < nprocs - 1) : {
    await(HR[mypid])
    U[4 * mypid + 4] = 0.25 * U[4 * mypid + 3] + 0.5 * U[4 * mypid + 4] + 0.25 * HR[mypid]
  }
  do i = 4 * mypid + 2, 4 * mypid + 3
    iown(U[i]) : { U[i] = 0.25 * U[i - 1] + 0.5 * U[i] + 0.25 * U[i + 1] }
  enddo
enddo
)";

// Sequential owner-computes vecadd; exercises the optimization pipeline
// inside a session (usePipeline = true).
const char* kVecadd = R"(
procs 4
array A f64 [1:64] (BLOCK)
array B f64 [1:64] (CYCLIC)

fill(A[1:64], B[1:64])
do i = 1, 64
  A[i] = A[i] + B[i]
enddo
)";

// A compute-heavy tenant: legitimate, but long enough that a step quota
// cancels it mid-flight.
const char* kRunaway = R"(
procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
do t = 1, 2000
  do i = 4 * mypid + 1, 4 * mypid + 4
    iown(A[i]) : { A[i] = A[i] + 1.0 }
  enddo
enddo
)";

serve::SessionOptions chaosOptions() {
  serve::SessionOptions o;
  o.watchdogMs = 200;       // fast deadlock diagnosis (quiescence-based,
                            // so sanitizer slowdown cannot false-positive)
  o.retry.maxAttempts = 2;  // bounded retry; keeps drop-all sessions quick
  o.retry.backoffBaseMs = 1;
  o.retry.backoffCapMs = 4;
  return o;
}

/// Fresh empty scratch directory under the test temp root.
std::string scratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "xdp_serve_chaos_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace

TEST(ServeChaos, MixedPopulationIsolatesEveryFault) {
  const int kSessions = 200;
  const serve::SessionOptions sopts = chaosOptions();

  // Solo reference digests for the healthy request shapes.
  serve::SessionRequest jacobiReq;
  jacobiReq.name = "jacobi";
  jacobiReq.source = kJacobi;
  serve::SessionRequest vecaddReq;
  vecaddReq.name = "vecadd";
  vecaddReq.source = kVecadd;
  vecaddReq.usePipeline = true;

  serve::SessionReport soloJacobi = serve::runSession(jacobiReq, sopts);
  serve::SessionReport soloVecadd = serve::runSession(vecaddReq, sopts);
  ASSERT_EQ(soloJacobi.outcome, SessionOutcome::Completed)
      << soloJacobi.error;
  ASSERT_EQ(soloVecadd.outcome, SessionOutcome::Completed)
      << soloVecadd.error;
  ASSERT_NE(soloJacobi.resultDigest, 0u);
  ASSERT_NE(soloVecadd.resultDigest, 0u);

  serve::ServerConfig cfg;
  cfg.workers = 8;
  cfg.maxPending = kSessions + 8;  // this test measures isolation, not
                                   // shedding (see AdmissionControlSheds)
  cfg.session = sopts;
  serve::Server server(cfg);

  // The chaos mix: slots 0-3 of every 8 are hostile (50% > the 25% floor).
  enum Kind { Crash, StepQuota, DropDeadlock, MsgQuota, Healthy };
  auto kindOf = [](int i) {
    switch (i % 8) {
      case 0: return Crash;
      case 1: return StepQuota;
      case 2: return DropDeadlock;
      case 3: return MsgQuota;
      default: return Healthy;
    }
  };

  std::vector<std::future<serve::SessionReport>> futs;
  std::vector<Kind> kinds;
  for (int i = 0; i < kSessions; ++i) {
    const Kind kind = kindOf(i);
    kinds.push_back(kind);
    serve::SessionRequest req;
    switch (kind) {
      case Crash: {
        req = jacobiReq;
        req.name = "crash#" + std::to_string(i);
        net::FaultPlan plan;
        plan.seed = 1000 + static_cast<std::uint64_t>(i);
        plan.crashPids = {1 + i % 3};  // some mid-machine endpoint dies
        plan.crashAfterSends = static_cast<std::uint64_t>(i % 3);
        req.faultPlan = plan;
        break;
      }
      case StepQuota: {
        req.name = "runaway#" + std::to_string(i);
        req.source = kRunaway;
        req.quotas.maxSteps = 500;
        break;
      }
      case DropDeadlock: {
        req = jacobiReq;
        req.name = "dropall#" + std::to_string(i);
        net::FaultPlan plan;
        plan.seed = 2000 + static_cast<std::uint64_t>(i);
        plan.dropProb = 1.0;  // every attempt deadlocks; retries exhaust
        req.faultPlan = plan;
        break;
      }
      case MsgQuota: {
        req = jacobiReq;
        req.name = "msgquota#" + std::to_string(i);
        req.quotas.maxMessages = 4;  // jacobi needs 18
        break;
      }
      case Healthy: {
        req = (i % 2 == 0) ? jacobiReq : vecaddReq;
        req.name = "healthy#" + std::to_string(i);
        break;
      }
    }
    futs.push_back(server.submit(std::move(req)));
  }

  std::map<SessionOutcome, int> outcomes;
  for (int i = 0; i < kSessions; ++i) {
    serve::SessionReport r = futs[static_cast<std::size_t>(i)].get();
    outcomes[r.outcome] += 1;

    // Universal teardown hygiene: whatever happened, the session's fabric
    // must drain to nothing.
    EXPECT_TRUE(r.hygieneClean) << r.name << ": post-drain state survived";

    switch (kinds[static_cast<std::size_t>(i)]) {
      case Crash:
        EXPECT_EQ(r.outcome, SessionOutcome::Crashed)
            << r.name << ": " << r.error;
        EXPECT_GE(r.faults.crashed, 1u) << r.name;
        break;
      case StepQuota:
        EXPECT_EQ(r.outcome, SessionOutcome::QuotaExceeded)
            << r.name << ": " << r.error;
        EXPECT_EQ(r.quotaResource, "steps") << r.name;
        break;
      case DropDeadlock:
        EXPECT_EQ(r.outcome, SessionOutcome::Deadlocked)
            << r.name << ": " << r.error;
        // The transient plan earned its bounded retries before giving up.
        EXPECT_EQ(r.attempts, sopts.retry.maxAttempts) << r.name;
        break;
      case MsgQuota:
        EXPECT_EQ(r.outcome, SessionOutcome::QuotaExceeded)
            << r.name << ": " << r.error;
        EXPECT_EQ(r.quotaResource, "messages") << r.name;
        break;
      case Healthy: {
        ASSERT_EQ(r.outcome, SessionOutcome::Completed)
            << r.name << ": " << r.error;
        EXPECT_EQ(r.attempts, 1) << r.name;
        const std::uint64_t want = (i % 2 == 0) ? soloJacobi.resultDigest
                                                : soloVecadd.resultDigest;
        // Bit-identical to the solo run despite the chaos around it.
        EXPECT_EQ(r.resultDigest, want) << r.name;
        // A healthy session's drain reclaims nothing — there was nothing
        // left to reclaim.
        EXPECT_EQ(r.drained.leaked(), 0u) << r.name;
        break;
      }
    }
  }

  // The server survived the whole population and leaked nothing.
  EXPECT_EQ(server.endpointsInUse(), 0);
  EXPECT_EQ(server.pendingSessions(), 0);
  serve::ServerStats st = server.stats();
  EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(st.completed + st.failed, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(st.rejected, 0u);

  // The mix really was hostile: >= 25% of sessions died by design.
  const int hostile = kSessions - outcomes[SessionOutcome::Completed];
  EXPECT_GE(hostile * 4, kSessions);
  EXPECT_GT(outcomes[SessionOutcome::Crashed], 0);
  EXPECT_GT(outcomes[SessionOutcome::Deadlocked], 0);
  EXPECT_GT(outcomes[SessionOutcome::QuotaExceeded], 0);
}

TEST(ServeChaos, AdmissionControlSheds) {
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.maxPending = 2;
  cfg.session = chaosOptions();
  serve::Server server(cfg);

  serve::SessionRequest req;
  req.source = kJacobi;

  int shed = 0;
  std::vector<std::future<serve::SessionReport>> futs;
  for (int i = 0; i < 32; ++i) {
    req.name = "burst#" + std::to_string(i);
    try {
      futs.push_back(server.submit(req));
    } catch (const serve::AdmissionRejected&) {
      ++shed;
    }
  }
  // One worker against a 32-burst with a 2-deep queue must shed.
  EXPECT_GT(shed, 0);

  // Everything admitted still completes; nothing shed was half-queued.
  for (auto& f : futs) {
    serve::SessionReport r = f.get();
    EXPECT_EQ(r.outcome, SessionOutcome::Completed) << r.error;
  }
  serve::ServerStats st = server.stats();
  EXPECT_EQ(st.rejected, static_cast<std::uint64_t>(shed));
  EXPECT_EQ(st.admitted + st.rejected, 32u);
}

TEST(ServeChaos, WallClockQuotaCancelsSession) {
  serve::SessionRequest req;
  req.name = "wall";
  // Heavy enough that it cannot finish inside the budget.
  req.source = R"(
procs 2
array A f64 [1:8] (BLOCK)
fill(A[1:8])
do t = 1, 200000
  do i = 4 * mypid + 1, 4 * mypid + 4
    iown(A[i]) : { A[i] = A[i] + 1.0 }
  enddo
enddo
)";
  req.quotas.wallBudgetMs = 1;
  serve::SessionReport r = serve::runSession(req, chaosOptions());
  EXPECT_EQ(r.outcome, SessionOutcome::QuotaExceeded) << r.error;
  EXPECT_EQ(r.quotaResource, "wall-time");
  EXPECT_TRUE(r.hygieneClean);
}

TEST(ServeChaos, MemoryQuotaCancelsSession) {
  serve::SessionRequest req;
  req.name = "mem";
  req.source = kRunaway;
  // Each runaway processor holds 4 doubles = 32 resident bytes from the
  // first fill; a 16-byte cap breaches at the first residency sample.
  req.quotas.maxResidentBytes = 16;
  serve::SessionReport r = serve::runSession(req, chaosOptions());
  EXPECT_EQ(r.outcome, SessionOutcome::QuotaExceeded) << r.error;
  EXPECT_EQ(r.quotaResource, "memory");
  EXPECT_TRUE(r.hygieneClean);
}

TEST(ServeChaos, RetryAbsorbsTransientDrops) {
  serve::SessionRequest solo;
  solo.name = "jacobi-solo";
  solo.source = kJacobi;
  serve::SessionOptions sopts = chaosOptions();
  sopts.retry.maxAttempts = 6;
  serve::SessionReport ref = serve::runSession(solo, sopts);
  ASSERT_EQ(ref.outcome, SessionOutcome::Completed) << ref.error;

  // A mildly lossy plan: some attempts deadlock, a reseeded retry gets
  // a fault stream that happens to let the session through.
  int completed = 0;
  int retried = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    serve::SessionRequest req = solo;
    req.name = "lossy#" + std::to_string(seed);
    net::FaultPlan plan;
    plan.seed = seed;
    plan.dropProb = 0.10;
    req.faultPlan = plan;
    serve::SessionReport r = serve::runSession(req, sopts);
    EXPECT_TRUE(r.hygieneClean) << r.name;
    if (r.outcome == SessionOutcome::Completed) {
      ++completed;
      if (r.attempts > 1) ++retried;
      // A retried completion is still bit-identical: drops either killed
      // an attempt or touched nothing.
      EXPECT_EQ(r.resultDigest, ref.resultDigest) << r.name;
    }
  }
  // With 10% drop over 18 messages and 6 attempts, completions dominate.
  EXPECT_GE(completed, 4);
  // And at least one of them needed the retry path to get there.
  EXPECT_GE(retried, 1);
}

TEST(ServeChaos, RejectionOutcomesNeverExecute) {
  serve::SessionOptions sopts = chaosOptions();

  serve::SessionRequest bad;
  bad.name = "unparseable";
  bad.source = "procs 2\nthis is not a program\n";
  serve::SessionReport r1 = serve::runSession(bad, sopts);
  EXPECT_EQ(r1.outcome, SessionOutcome::RejectedParse);
  EXPECT_FALSE(r1.error.empty());
  EXPECT_EQ(r1.stats.stmtsExecuted, 0u);

  // Statically wrong: p0 receives a value nobody sends. The --analyze
  // gate rejects it before it can run (and deadlock).
  serve::SessionRequest orphan;
  orphan.name = "orphan-recv";
  orphan.source = R"(
procs 2
array A f64 [1:8] (BLOCK)
fill(A[1:8])
(mypid == 0) : { A[1] <- A[5] }
(mypid == 0) : { await(A[1]) }
)";
  serve::SessionReport r2 = serve::runSession(orphan, sopts);
  EXPECT_EQ(r2.outcome, SessionOutcome::RejectedAnalysis);
  EXPECT_FALSE(r2.error.empty());
  EXPECT_EQ(r2.stats.stmtsExecuted, 0u);

  // The same program with the gate off runs and is *contained* as a
  // session deadlock instead — graceful degradation both ways.
  orphan.analyze = false;
  serve::SessionReport r3 = serve::runSession(orphan, sopts);
  EXPECT_EQ(r3.outcome, SessionOutcome::Deadlocked) << r3.error;
  EXPECT_TRUE(r3.hygieneClean);
}

TEST(ServeChaos, CrashRecoverMixMatchesFaultFree) {
  // Fail-recover chaos: half the population gets an endpoint that dies
  // mid-run and restores from its last snapshot. Every session — faulted
  // or not — must complete bit-identical to the fault-free solo run, and
  // the arena must drain back to zero.
  const serve::SessionOptions sopts = chaosOptions();

  serve::SessionRequest ref;
  ref.name = "jacobi-ref";
  ref.source = kJacobi;
  serve::SessionReport solo = serve::runSession(ref, sopts);
  ASSERT_EQ(solo.outcome, SessionOutcome::Completed) << solo.error;
  ASSERT_NE(solo.resultDigest, 0u);

  const int kSessions = 48;
  serve::ServerConfig cfg;
  cfg.workers = 8;
  cfg.maxPending = kSessions + 8;
  cfg.session = sopts;
  serve::Server server(cfg);

  std::vector<std::future<serve::SessionReport>> futs;
  for (int i = 0; i < kSessions; ++i) {
    serve::SessionRequest req = ref;
    const bool faulted = i % 2 == 0;
    req.name = (faulted ? "recover#" : "healthy#") + std::to_string(i);
    req.checkpointIntervalSteps = 16;
    if (faulted) {
      net::FaultPlan plan;
      plan.seed = 3000 + static_cast<std::uint64_t>(i);
      plan.crashPids = {1 + i % 3};  // every jacobi pid in 1..3 sends,
                                     // so the crash is guaranteed to fire
      plan.crashAfterSends = static_cast<std::uint64_t>(i % 3);
      plan.crashFate = net::CrashFate::Recover;
      req.faultPlan = plan;
    }
    futs.push_back(server.submit(std::move(req)));
  }

  for (int i = 0; i < kSessions; ++i) {
    serve::SessionReport r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.outcome, SessionOutcome::Completed)
        << r.name << ": " << r.error;
    // Digest parity: recovery replays to the exact fault-free result.
    EXPECT_EQ(r.resultDigest, solo.resultDigest) << r.name;
    EXPECT_TRUE(r.hygieneClean) << r.name;
    EXPECT_GE(r.recovery.snapshots, 1u) << r.name;  // genesis at least
    if (i % 2 == 0) {
      EXPECT_GE(r.recovery.recoveries, 1u)
          << r.name << ": crash never triggered";
      EXPECT_GE(r.faults.recovered, 1u) << r.name;
    } else {
      EXPECT_EQ(r.recovery.recoveries, 0u) << r.name;
    }
  }

  EXPECT_EQ(server.endpointsInUse(), 0);
  EXPECT_EQ(server.pendingSessions(), 0);
}

TEST(ServeChaos, PreemptSpillResumeRoundTrip) {
  const std::string dir = scratchDir("preempt");
  serve::SessionOptions sopts = chaosOptions();
  sopts.spillDir = dir;

  serve::SessionRequest ref;
  ref.name = "jacobi";
  ref.source = kJacobi;
  serve::SessionReport solo = serve::runSession(ref, sopts);
  ASSERT_EQ(solo.outcome, SessionOutcome::Completed) << solo.error;

  // Preempt mid-run: the session checkpoints, spills, and unwinds.
  serve::SessionRequest req = ref;
  req.preemptAfterSteps = 30;
  serve::SessionReport pre = serve::runSession(req, sopts, 7);
  ASSERT_EQ(pre.outcome, SessionOutcome::Preempted) << pre.error;
  ASSERT_FALSE(pre.recovery.spillPath.empty());
  EXPECT_TRUE(std::filesystem::exists(pre.recovery.spillPath));
  EXPECT_TRUE(pre.hygieneClean);
  EXPECT_EQ(pre.resultDigest, 0u);  // no result yet

  // The spill round-trips through its reader.
  serve::SpillFile sp = serve::readSpillFile(pre.recovery.spillPath);
  EXPECT_EQ(sp.name, req.name);
  EXPECT_EQ(sp.source, req.source);
  EXPECT_FALSE(sp.snapshot.empty());

  // Resume in a fresh session: completes bit-identical to the
  // uninterrupted run and consumes the spill file.
  serve::SessionRequest resume = ref;
  resume.preemptAfterSteps = 0;
  resume.resumeFrom = pre.recovery.spillPath;
  serve::SessionReport post = serve::runSession(resume, sopts, 8);
  ASSERT_EQ(post.outcome, SessionOutcome::Completed) << post.error;
  EXPECT_TRUE(post.recovery.resumed);
  EXPECT_EQ(post.resultDigest, solo.resultDigest);
  EXPECT_FALSE(std::filesystem::exists(pre.recovery.spillPath));
}

TEST(ServeChaos, ServerReadmitsSpilledSessions) {
  const std::string dir = scratchDir("readmit");
  serve::SessionOptions sopts = chaosOptions();
  sopts.spillDir = dir;

  serve::SessionRequest ref;
  ref.name = "jacobi";
  ref.source = kJacobi;
  serve::SessionReport solo = serve::runSession(ref, sopts);
  ASSERT_EQ(solo.outcome, SessionOutcome::Completed) << solo.error;

  // Server 1 preempts the session and is then torn down — the moral
  // equivalent of killing it mid-job.
  {
    serve::ServerConfig cfg;
    cfg.workers = 2;
    cfg.session = sopts;
    serve::Server server(cfg);
    serve::SessionRequest req = ref;
    req.preemptAfterSteps = 30;
    serve::SessionReport r = server.submit(std::move(req)).get();
    ASSERT_EQ(r.outcome, SessionOutcome::Preempted) << r.error;
    ASSERT_FALSE(r.recovery.spillPath.empty());
  }
  ASSERT_EQ(std::distance(std::filesystem::directory_iterator(dir),
                          std::filesystem::directory_iterator()),
            1);

  // Server 2 finds the spill at startup and runs it to completion.
  {
    serve::ServerConfig cfg;
    cfg.workers = 2;
    cfg.session = sopts;
    serve::Server server(cfg);
    EXPECT_EQ(server.readmitSpilled(dir), 1);
    server.shutdown();  // runs everything queued
    serve::ServerStats st = server.stats();
    EXPECT_EQ(st.readmitted, 1u);
    EXPECT_EQ(st.completed, 1u);
    EXPECT_EQ(st.failed, 0u);
  }
  // The resumed completion consumed the spill; a third sweep is a no-op.
  serve::ServerConfig cfg;
  cfg.session = sopts;
  serve::Server server(cfg);
  EXPECT_EQ(server.readmitSpilled(dir), 0);
}

TEST(ServeChaos, CorruptSpillsAreSkippedNotAdmitted) {
  const std::string dir = scratchDir("corrupt");
  serve::SessionOptions sopts = chaosOptions();
  sopts.spillDir = dir;

  // A valid spill, then a bit flip in the middle.
  serve::SessionRequest req;
  req.name = "jacobi";
  req.source = kJacobi;
  req.preemptAfterSteps = 30;
  serve::SessionReport pre = serve::runSession(req, sopts, 3);
  ASSERT_EQ(pre.outcome, SessionOutcome::Preempted) << pre.error;
  const std::string good = pre.recovery.spillPath;
  {
    std::fstream f(good, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    char c = 0;
    f.seekg(64);
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x20);
    f.seekp(64);
    f.write(&c, 1);
  }
  EXPECT_THROW(serve::readSpillFile(good), ckpt::CkptError);

  // Plus outright garbage and a truncated file.
  std::ofstream(dir + "/garbage-1.xdpspill") << "not a spill";
  std::ofstream(dir + "/empty-2.xdpspill");

  serve::ServerConfig cfg;
  cfg.session = sopts;
  serve::Server server(cfg);
  EXPECT_EQ(server.readmitSpilled(dir), 0);
  EXPECT_EQ(server.stats().readmitted, 0u);
  // Skipped spills stay on disk for inspection; nothing was deleted.
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir),
                          std::filesystem::directory_iterator()),
            3);
}

TEST(ServeChaos, StopLatchInterruptsRetryBackoff) {
  // A tripped latch turns a 60-second backoff into an immediate return,
  // so server shutdown is never stuck behind sleeping retries.
  serve::StopLatch latch;
  latch.stop();
  EXPECT_TRUE(latch.stopped());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(latch.waitFor(60000));
  serve::SessionOptions sopts = chaosOptions();
  sopts.retry.maxAttempts = 3;
  sopts.retry.backoffBaseMs = 60000;
  sopts.retry.backoffCapMs = 60000;
  sopts.stopLatch = &latch;

  serve::SessionRequest req;
  req.name = "dropall";
  req.source = kJacobi;
  net::FaultPlan plan;
  plan.dropProb = 1.0;  // every attempt deadlocks; retry must back off
  req.faultPlan = plan;
  serve::SessionReport r = serve::runSession(req, sopts);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_EQ(r.outcome, SessionOutcome::Deadlocked) << r.error;
  EXPECT_EQ(r.attempts, 3);
  // Two backoffs of nominally 60 s each collapsed through the latch; the
  // bound is generous (watchdog windows dominate) but far under one sleep.
  EXPECT_LT(elapsed.count(), 30000) << "backoff ignored the stop latch";
}
