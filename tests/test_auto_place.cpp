// Tests for the auto-placement search (opt::autoPlace): on the shipped
// example programs the chosen placement must never model more bytes than
// the hand-picked one (the original is candidate 0, so ties keep it); on
// the misaligned vecadd it must discover an aligned placement that moves
// zero bytes; and the rewritten program must survive a print/reparse
// round trip and actually run with the traffic the search promised.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "xdp/apps/programs.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/auto_place.hpp"
#include "xdp/opt/passes.hpp"

namespace xdp::opt {
namespace {

il::Program loadProgram(const char* name) {
  std::ifstream in(std::string(XDP_PROGRAMS_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << name;
  std::stringstream buf;
  buf << in.rdbuf();
  return il::parseProgram(buf.str());
}

std::int64_t runBytes(const il::Program& prog) {
  PassManager pm;
  for (const Pass& p : standardPipeline()) pm.add(p.name, p.fn);
  il::Program low = pm.run(prog, nullptr);
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  interp::Interpreter in(low, opts, {});
  apps::registerFillKernel(in, 42);
  apps::registerFftKernels(in);
  in.run();
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
  return static_cast<std::int64_t>(
      in.runtime().fabric().totalStats().bytesSent);
}

TEST(AutoPlace, NeverWorseThanHandPickedOnExamples) {
  for (const char* name :
       {"vecadd.xdp", "jacobi.xdp", "cannon.xdp", "taskfarm.xdp"}) {
    il::Program prog = loadProgram(name);
    AutoPlaceResult r = autoPlace(prog);
    ASSERT_TRUE(r.original.valid) << name;
    ASSERT_TRUE(r.best.valid) << name;
    EXPECT_LE(r.best.bytes, r.original.bytes) << name;
    EXPECT_LE(r.lowerBound, r.best.bytes) << name;
    EXPECT_GT(r.candidatesTried, 0u) << name;
  }
}

TEST(AutoPlace, TiesKeepTheOriginalPlacement) {
  // jacobi's hand-picked BLOCK placement is optimal (modeled bytes equal
  // the lower bound); the search must keep it, not swap in an equal-cost
  // alternative.
  il::Program prog = loadProgram("jacobi.xdp");
  AutoPlaceResult r = autoPlace(prog);
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(r.best.bytes, r.original.bytes);
  for (std::size_t i = 0; i < prog.arrays.size(); ++i)
    EXPECT_EQ(r.best.dists[i], prog.arrays[i].dist) << prog.arrays[i].name;
  EXPECT_DOUBLE_EQ(r.pctOfOptimal(), 100.0);
}

TEST(AutoPlace, AlignsTheMisalignedVecadd) {
  il::Program prog = loadProgram("vecadd.xdp");
  AutoPlaceResult r = autoPlace(prog);
  ASSERT_TRUE(r.best.valid);
  EXPECT_GT(r.original.bytes, 0);  // BLOCK/CYCLIC forces traffic
  EXPECT_EQ(r.best.bytes, 0);      // an aligned placement moves nothing
  EXPECT_EQ(r.best.dists[0], r.best.dists[1]);  // A and B now agree
}

TEST(AutoPlace, RewrittenProgramRoundTripsAndRunsAsModeled) {
  il::Program prog = loadProgram("vecadd.xdp");
  AutoPlaceResult r = autoPlace(prog);
  ASSERT_TRUE(r.best.valid);
  // The rewritten declarations survive the parseable printer.
  il::PrintOptions po;
  po.parseable = true;
  il::Program reparsed = il::parseProgram(il::printProgram(r.program, po));
  ASSERT_EQ(reparsed.arrays.size(), r.program.arrays.size());
  for (std::size_t i = 0; i < reparsed.arrays.size(); ++i)
    EXPECT_EQ(reparsed.arrays[i].dist, r.program.arrays[i].dist);
  // And the placement's modeled traffic is what execution produces.
  EXPECT_EQ(runBytes(r.program), r.best.bytes);
  EXPECT_EQ(runBytes(reparsed), r.best.bytes);
}

TEST(AutoPlace, RespectsTheCandidateCap) {
  il::Program prog = loadProgram("vecadd.xdp");
  AutoPlaceOptions opts;
  opts.maxCandidates = 3;
  AutoPlaceResult r = autoPlace(prog, opts);
  EXPECT_LE(r.candidatesTried, 3u);
  EXPECT_TRUE(r.original.valid);  // candidate 0 is always the original
}

TEST(AutoPlace, CollapsedDimensionsAreNotSearched) {
  // cannon's A is (BLOCK:4, *): the collapsed second dimension must stay
  // collapsed in every candidate the search proposes.
  il::Program prog = loadProgram("cannon.xdp");
  AutoPlaceResult r = autoPlace(prog);
  ASSERT_TRUE(r.best.valid);
  EXPECT_EQ(r.best.dists[0].specs()[1].kind, dist::DistKind::Collapsed);
}

}  // namespace
}  // namespace xdp::opt
