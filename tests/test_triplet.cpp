// Unit and property tests for the F90 triplet algebra — the primitive all
// XDP ownership queries reduce to.
#include <gtest/gtest.h>

#include <set>

#include "xdp/sections/triplet.hpp"
#include "xdp/support/check.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::sec {
namespace {

std::set<Index> elems(const Triplet& t) {
  std::set<Index> out;
  for (Index k = 0; k < t.count(); ++k) out.insert(t.at(k));
  return out;
}

std::set<Index> elems(const std::vector<Triplet>& ts) {
  std::set<Index> out;
  for (const auto& t : ts)
    for (Index k = 0; k < t.count(); ++k) out.insert(t.at(k));
  return out;
}

TEST(Triplet, EmptyIsCanonical) {
  Triplet e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.count(), 0);
  EXPECT_EQ(Triplet(5, 3), e);          // lb > ub
  EXPECT_EQ(Triplet(5, 3, 2), e);
  EXPECT_FALSE(e.contains(0));
}

TEST(Triplet, SingleElement) {
  Triplet t(7);
  EXPECT_EQ(t.count(), 1);
  EXPECT_TRUE(t.contains(7));
  EXPECT_FALSE(t.contains(8));
  EXPECT_EQ(t.stride(), 1);
}

TEST(Triplet, UbClampedToLastElement) {
  Triplet t(1, 10, 3);  // {1,4,7,10}
  EXPECT_EQ(t.ub(), 10);
  Triplet u(1, 9, 3);  // {1,4,7} — ub clamps to 7
  EXPECT_EQ(u.ub(), 7);
  EXPECT_EQ(u.count(), 3);
}

TEST(Triplet, SingleElementStrideNormalized) {
  // 5:5:3 == 5:5:1 as a set; canonical form makes them compare equal.
  EXPECT_EQ(Triplet(5, 5, 3), Triplet(5));
}

TEST(Triplet, DescendingDenotesSameSet) {
  Triplet t = Triplet::descending(10, 2, -2);  // {10,8,6,4,2}
  EXPECT_EQ(t, Triplet(2, 10, 2));
  // Descending with lb > ub in set terms still lands on the right residue:
  // 9:1:-3 = {9,6,3} = 3:9:3.
  EXPECT_EQ(Triplet::descending(9, 1, -3), Triplet(3, 9, 3));
  // first < last is empty.
  EXPECT_TRUE(Triplet::descending(1, 9, -3).empty());
}

TEST(Triplet, At) {
  Triplet t(2, 14, 4);  // {2,6,10,14}
  EXPECT_EQ(t.at(0), 2);
  EXPECT_EQ(t.at(3), 14);
  EXPECT_THROW(t.at(4), xdp::Error);
}

TEST(Triplet, IntersectSameStride) {
  Triplet a(1, 100);
  Triplet b(50, 200);
  EXPECT_EQ(Triplet::intersect(a, b), Triplet(50, 100));
}

TEST(Triplet, IntersectDisjointRanges) {
  EXPECT_TRUE(Triplet::intersect(Triplet(1, 10), Triplet(11, 20)).empty());
}

TEST(Triplet, IntersectStridedNeverMeets) {
  // Evens vs odds.
  EXPECT_TRUE(
      Triplet::intersect(Triplet(0, 100, 2), Triplet(1, 99, 2)).empty());
}

TEST(Triplet, IntersectCrtCase) {
  // {0,3,6,...} ∩ {0,5,10,...} = multiples of 15.
  Triplet i = Triplet::intersect(Triplet(0, 90, 3), Triplet(0, 90, 5));
  EXPECT_EQ(i, Triplet(0, 90, 15));
  // Shifted: x ≡ 1 mod 3, x ≡ 2 mod 5 -> x ≡ 7 mod 15.
  Triplet j = Triplet::intersect(Triplet(1, 100, 3), Triplet(2, 100, 5));
  EXPECT_EQ(j, Triplet(7, 97, 15));
}

TEST(Triplet, IntersectWithNegativeBounds) {
  Triplet i = Triplet::intersect(Triplet(-10, 10, 4), Triplet(-6, 6, 2));
  // {-10,-6,-2,2,6,10} ∩ {-6,-4,...,6} = {-6,-2,2,6}.
  EXPECT_EQ(i, Triplet(-6, 6, 4));
}

TEST(Triplet, SubtractMiddleBlock) {
  auto rest = Triplet::subtract(Triplet(1, 10), Triplet(4, 6));
  std::set<Index> expect{1, 2, 3, 7, 8, 9, 10};
  EXPECT_EQ(elems(rest), expect);
}

TEST(Triplet, SubtractEveryOther) {
  // {1..10} minus evens leaves exactly the odds (possibly as several
  // disjoint pieces — the representation is not required to be minimal).
  auto rest = Triplet::subtract(Triplet(1, 10), Triplet(2, 10, 2));
  std::set<Index> expect{1, 3, 5, 7, 9};
  EXPECT_EQ(elems(rest), expect);
  Index total = 0;
  for (const auto& t : rest) total += t.count();
  EXPECT_EQ(total, 5);
}

TEST(Triplet, SubtractDisjointReturnsOriginal) {
  auto rest = Triplet::subtract(Triplet(1, 5), Triplet(20, 30));
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], Triplet(1, 5));
}

TEST(Triplet, SubtractAllLeavesNothing) {
  EXPECT_TRUE(Triplet::subtract(Triplet(3, 9, 2), Triplet(1, 11)).empty());
}

// --- property sweeps: intersection and subtraction against brute force ---

struct TripletCase {
  std::uint64_t seed;
};

class TripletProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TripletProperty, IntersectMatchesBruteForce) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    Triplet a(rng.range(-20, 20), rng.range(-20, 40), rng.range(1, 7));
    Triplet b(rng.range(-20, 20), rng.range(-20, 40), rng.range(1, 7));
    Triplet i = Triplet::intersect(a, b);
    std::set<Index> expect;
    for (Index x : elems(a))
      if (b.contains(x)) expect.insert(x);
    EXPECT_EQ(elems(i), expect) << "a=" << a.lb() << ":" << a.ub() << ":"
                                << a.stride() << " b=" << b.lb() << ":"
                                << b.ub() << ":" << b.stride();
  }
}

TEST_P(TripletProperty, SubtractMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xabcdef);
  for (int iter = 0; iter < 200; ++iter) {
    Triplet a(rng.range(-20, 20), rng.range(-20, 40), rng.range(1, 7));
    Triplet b(rng.range(-20, 20), rng.range(-20, 40), rng.range(1, 7));
    auto rest = Triplet::subtract(a, b);
    std::set<Index> expect;
    for (Index x : elems(a))
      if (!b.contains(x)) expect.insert(x);
    EXPECT_EQ(elems(rest), expect);
    // Pieces must be pairwise disjoint.
    Index total = 0;
    for (const auto& t : rest) total += t.count();
    EXPECT_EQ(total, static_cast<Index>(expect.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripletProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 42, 99, 1234,
                                           987654321));

// --- direct edge-case coverage (not just via property sweeps) ------------

TEST(TripletEdge, DescendingEmptyWhenFirstBelowLast) {
  EXPECT_TRUE(Triplet::descending(1, 9, -3).empty());
  EXPECT_TRUE(Triplet::descending(-5, -1, -1).empty());
  EXPECT_TRUE(Triplet::descending(0, 1, -7).empty());
}

TEST(TripletEdge, DescendingSingleElement) {
  // first == last, and first > last with a stride overshooting last.
  EXPECT_EQ(Triplet::descending(4, 4, -2), Triplet(4, 4));
  EXPECT_EQ(Triplet::descending(5, 3, -9), Triplet(5, 5));
}

TEST(TripletEdge, DescendingNegativeBounds) {
  // {-2, -5, -8} as an ascending set.
  EXPECT_EQ(Triplet::descending(-2, -8, -3), Triplet(-8, -2, 3));
  // Last not hit exactly: {-1, -4} (next would be -7 < -6).
  EXPECT_EQ(Triplet::descending(-1, -6, -3), Triplet(-4, -1, 3));
  // Straddling zero: {3, 0, -3, -6}.
  EXPECT_EQ(Triplet::descending(3, -6, -3), Triplet(-6, 3, 3));
}

TEST(TripletEdge, CanonicalizeResetsStrideWhenSingle) {
  // lb == ub directly.
  EXPECT_EQ(Triplet(7, 7, 5).stride(), 1);
  // ub snaps down to lb: 3:6:17 == {3}.
  Triplet t(3, 6, 17);
  EXPECT_EQ(t.ub(), 3);
  EXPECT_EQ(t.stride(), 1);
  EXPECT_EQ(t.count(), 1);
}

TEST(TripletEdge, CanonicalizeSnapsUbOntoTheProgression) {
  Triplet t(2, 11, 4);  // {2, 6, 10}
  EXPECT_EQ(t.ub(), 10);
  EXPECT_EQ(t.count(), 3);
}

TEST(TripletEdge, CanonicalizeNegativeBoundsUseFloorSemantics) {
  // {-7, -3, 1}: (ub - lb)/stride on negatives must not truncate upward.
  Triplet t(-7, 3, 4);
  EXPECT_EQ(t.ub(), 1);
  EXPECT_EQ(t.count(), 3);
  EXPECT_EQ(t.at(0), -7);
  EXPECT_EQ(t.at(2), 1);
  // Entirely negative range with a coarse stride: {-9, -4}.
  Triplet u(-9, -1, 5);
  EXPECT_EQ(u.ub(), -4);
  EXPECT_EQ(u.count(), 2);
}

TEST(TripletEdge, EmptyFromInvertedBoundsIsCanonicalEmpty) {
  Triplet t(5, -5, 3);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t, Triplet());
  EXPECT_EQ(t.count(), 0);
}

TEST(TripletEdge, SubtractWithNegativeBoundsAndStride) {
  // a = {-8, -5, -2, 1, 4}, b = {-5, 1} => a \ b = {-8, -2, 4}.
  Triplet a(-8, 4, 3);
  Triplet b(-5, 1, 6);
  EXPECT_EQ(elems(Triplet::subtract(a, b)),
            (std::set<Index>{-8, -2, 4}));
}

}  // namespace
}  // namespace xdp::sec
