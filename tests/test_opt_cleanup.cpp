// Dead array elimination and receive hoisting.
#include <gtest/gtest.h>

#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"

namespace xdp::opt {
namespace {

using interp::Interpreter;
using sec::Section;
using sec::Triplet;

// --- dead array elimination -------------------------------------------------

TEST(DeadArrayElim, RemovesRteOrphanedTemporaries) {
  auto cfg = apps::vecAddAligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  il::Program rte = redundantTransferElimination(lowered);
  ASSERT_GE(rte.arrays.size(), 3u);  // A, B + orphaned T0
  il::Program clean = deadArrayElimination(rte);
  EXPECT_EQ(clean.arrays.size(), 2u);
  EXPECT_EQ(clean.findSymbol("A"), 0);
  EXPECT_EQ(clean.findSymbol("B"), 1);
  EXPECT_EQ(clean.findSymbol("T0"), -1);
  // Still executes correctly after renumbering.
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  Interpreter in(clean, opts);
  apps::registerFillKernel(in, cfg.seed);
  in.run();
  auto vals = apps::gatherF64(in.runtime(), clean.findSymbol("A"),
                              Section{Triplet(1, 16)});
  for (sec::Index i = 1; i <= 16; ++i)
    EXPECT_DOUBLE_EQ(vals[static_cast<std::size_t>(i - 1)],
                     apps::vecAddExpected(cfg, i));
}

TEST(DeadArrayElim, KeepsLiveProgramsUntouched) {
  auto cfg = apps::vecAddMisaligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  il::Program clean = deadArrayElimination(lowered);
  EXPECT_EQ(clean.arrays.size(), lowered.arrays.size());
  EXPECT_EQ(il::printProgram(clean), il::printProgram(lowered));
}

TEST(DeadArrayElim, RenumberingAdjustsEverySymbolField) {
  // Kill the first array; everything referencing the survivors shifts.
  il::Program p;
  p.nprocs = 2;
  Section g{Triplet(1, 4)};
  dist::Distribution d(g, {dist::DimSpec::block(2)});
  p.addArray({"DEAD", rt::ElemType::F64, g, d, {}});
  p.addArray({"L", rt::ElemType::F64, g, d, {}});
  p.addArray({"R", rt::ElemType::F64, g, d, {}});
  auto s1 = il::secPoint({il::intConst(1)});
  p.body = il::block({
      il::guarded(il::iown(1, s1),
                  il::block({il::elemAssign(1, s1, il::elem(2, s1)),
                             il::sendData(2, s1,
                                          il::DestSpec::ownerOf(1, s1))})),
  });
  il::Program clean = deadArrayElimination(p);
  ASSERT_EQ(clean.arrays.size(), 2u);
  EXPECT_EQ(clean.findSymbol("L"), 0);
  EXPECT_EQ(clean.findSymbol("R"), 1);
  std::string text = il::printProgram(clean);
  EXPECT_NE(text.find("iown(L[1])"), std::string::npos);
  EXPECT_NE(text.find("L[1] = R[1]"), std::string::npos);
  EXPECT_NE(text.find("{owner(L[1])}"), std::string::npos);
}

// --- receive hoisting ---------------------------------------------------------

il::Program exchangeProgram(bool preHoisted) {
  // p0: computes, then sends A; p1: computes, receives into IN, awaits.
  // The receive is textually last; hoisting should lift it above the
  // compute (and the send — disjoint symbols).
  il::Program p;
  p.nprocs = 2;
  Section g{Triplet(1, 256)};
  dist::Distribution dA(g, {dist::DimSpec::block(1)});
  p.addArray({"A", rt::ElemType::F64, g, dA, {}});
  Section g2{Triplet(1, 512)};
  p.addArray({"IN", rt::ElemType::F64, g2,
              dist::Distribution(g2, {dist::DimSpec::block(2)}), {}});
  auto whole = il::secLit(
      {il::TripletExpr{il::intConst(1), il::intConst(256), {}}});
  auto inbox = il::secLit(
      {il::TripletExpr{il::intConst(257), il::intConst(512), {}}});
  auto isP0 = il::bin(il::BinOp::Eq, il::mypid(), il::intConst(0));
  auto isP1 = il::bin(il::BinOp::Eq, il::mypid(), il::intConst(1));
  std::vector<il::StmtPtr> stmts;
  if (preHoisted)
    stmts.push_back(
        il::guarded(isP1, il::block({il::recvData(1, inbox, 0, whole)})));
  stmts.push_back(il::guarded(
      isP0, il::block({il::computeCost(il::realConst(1e-4)),
                       il::sendData(0, whole,
                                    il::DestSpec::toPids({il::intConst(1)}))})));
  stmts.push_back(
      il::guarded(isP1, il::block({il::computeCost(il::realConst(2e-4))})));
  if (!preHoisted)
    stmts.push_back(
        il::guarded(isP1, il::block({il::recvData(1, inbox, 0, whole)})));
  stmts.push_back(
      il::guarded(isP1, il::block({il::awaitStmt(1, inbox)})));
  p.body = il::block(std::move(stmts));
  return p;
}

double makespanOf(const il::Program& p) {
  Interpreter in(p, {});
  in.run();
  return in.runtime().fabric().makespan();
}

TEST(RecvHoisting, LiftsReceiveAboveIndependentWork) {
  il::Program late = exchangeProgram(false);
  il::Program hoisted = recvHoisting(late);
  // The guarded receive must now be the first statement.
  const auto& first = hoisted.body->stmts[0];
  ASSERT_EQ(first->kind, il::StmtKind::Guarded);
  ASSERT_EQ(first->body->stmts[0]->kind, il::StmtKind::RecvData);
  // ... and the program equals the hand-hoisted version textually.
  EXPECT_EQ(il::printProgram(hoisted),
            il::printProgram(exchangeProgram(true)));
}

TEST(RecvHoisting, PostedReceiveAvoidsUnexpectedCopy) {
  il::Program late = exchangeProgram(false);
  il::Program hoisted = recvHoisting(late);
  double tLate = makespanOf(late);
  double tHoisted = makespanOf(hoisted);
  EXPECT_LT(tHoisted, tLate);  // unexpected-message copy avoided
  // Also check the counter directly.
  Interpreter inLate(late, {});
  inLate.run();
  EXPECT_EQ(inLate.runtime().fabric().totalStats().unexpectedMessages, 1u);
  Interpreter inHoist(hoisted, {});
  inHoist.run();
  EXPECT_EQ(inHoist.runtime().fabric().totalStats().unexpectedMessages, 0u);
}

TEST(RecvHoisting, RespectsTrueDependences) {
  // A receive into IN cannot move above a statement that writes IN.
  il::Program p;
  p.nprocs = 2;
  Section g{Triplet(1, 4)};
  dist::Distribution d2(g, {dist::DimSpec::block(2)});
  p.addArray({"A", rt::ElemType::F64, g,
              dist::Distribution(g, {dist::DimSpec::block(1)}), {}});
  p.addArray({"IN", rt::ElemType::F64, g, d2, {}});
  auto a1 = il::secPoint({il::intConst(1)});
  auto in3 = il::secPoint({il::intConst(3)});
  auto isP1 = il::bin(il::BinOp::Eq, il::mypid(), il::intConst(1));
  p.body = il::block({
      il::guarded(isP1, il::block({il::elemAssign(1, in3, il::realConst(1)),
                                   il::recvData(1, in3, 0, a1)})),
      il::guarded(il::lnot(isP1),
                  il::block({il::sendData(
                      0, a1, il::DestSpec::toPids({il::intConst(1)}))})),
  });
  il::Program out = recvHoisting(p);
  // Inside the p1 guard, the order is unchanged (write-before-receive).
  const auto& body = out.body->stmts[0]->body->stmts;
  EXPECT_EQ(body[0]->kind, il::StmtKind::ElemAssign);
  EXPECT_EQ(body[1]->kind, il::StmtKind::RecvData);
}

TEST(RecvHoisting, NameSymbolIsOnlyATag) {
  // The receive names A but doesn't touch it: it may hop over a SEND of A.
  il::Program late = exchangeProgram(false);
  il::Program hoisted = recvHoisting(late);
  // Receive ended up before the send guard (index 0 < send at index 1).
  ASSERT_GE(hoisted.body->stmts.size(), 2u);
  EXPECT_EQ(hoisted.body->stmts[0]->body->stmts[0]->kind,
            il::StmtKind::RecvData);
  EXPECT_EQ(hoisted.body->stmts[1]->body->stmts.back()->kind,
            il::StmtKind::SendData);
}

TEST(RecvHoisting, StandardPipelineStillCorrect) {
  auto cfg = apps::vecAddMisaligned(32, 4);
  PassManager pm;
  for (const auto& p : standardPipeline()) pm.add(p);
  il::Program optimized = pm.run(apps::buildVecAdd(cfg));
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  Interpreter in(optimized, opts);
  apps::registerFillKernel(in, cfg.seed);
  in.run();
  auto vals = apps::gatherF64(in.runtime(), optimized.findSymbol("A"),
                              Section{Triplet(1, 32)});
  for (sec::Index i = 1; i <= 32; ++i)
    EXPECT_DOUBLE_EQ(vals[static_cast<std::size_t>(i - 1)],
                     apps::vecAddExpected(cfg, i));
}

}  // namespace
}  // namespace xdp::opt
