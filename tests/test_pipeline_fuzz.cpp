// Differential fuzzing of the whole compiler: random sequential programs
// (random distributions, random affine-rhs expressions over several
// arrays) are lowered and pushed through randomized pass orderings; every
// variant must compute exactly the result of direct sequential evaluation.
// The static verifier rides along as a second oracle: every stage that
// executes correctly must also verify with zero errors, so a verifier
// false positive (or a pass bug the runtime masks) fails here.
#include <gtest/gtest.h>

#include <cmath>

#include "xdp/analysis/verifier.hpp"
#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::opt {
namespace {

using interp::Interpreter;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

struct FuzzCase {
  Index n;
  int nprocs;
  std::uint64_t seed;
  std::vector<dist::Distribution> dists;  // one per array (A = lhs first)
  // rhs = sum over terms of coef * X[i], where X is one of the arrays.
  struct Term {
    int sym;
    double coef;
  };
  std::vector<Term> terms;
  double bias = 0.0;
};

dist::Distribution randomDist(Rng& rng, const Section& g, int nprocs) {
  switch (rng.below(3)) {
    case 0:
      return dist::Distribution(g, {dist::DimSpec::block(nprocs)});
    case 1:
      return dist::Distribution(g, {dist::DimSpec::cyclic(nprocs)});
    default:
      return dist::Distribution(
          g, {dist::DimSpec::blockCyclic(
                 nprocs, static_cast<Index>(rng.range(1, 4)))});
  }
}

FuzzCase randomCase(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase fc;
  fc.seed = seed;
  fc.n = rng.range(8, 40);
  fc.nprocs = static_cast<int>(rng.range(2, 4));
  Section g{Triplet(1, fc.n)};
  const int nArrays = static_cast<int>(rng.range(2, 4));
  for (int a = 0; a < nArrays; ++a)
    fc.dists.push_back(randomDist(rng, g, fc.nprocs));
  const int nTerms = static_cast<int>(rng.range(1, 3));
  for (int t = 0; t < nTerms; ++t) {
    FuzzCase::Term term;
    term.sym = static_cast<int>(rng.below(static_cast<std::uint64_t>(nArrays)));
    term.coef = static_cast<double>(rng.range(-3, 3));
    if (term.coef == 0) term.coef = 1.0;
    fc.terms.push_back(term);
  }
  fc.bias = static_cast<double>(rng.range(-5, 5)) * 0.25;
  return fc;
}

il::Program buildCase(const FuzzCase& fc) {
  il::Program prog;
  prog.nprocs = fc.nprocs;
  Section g{Triplet(1, fc.n)};
  std::vector<std::pair<int, il::SectionExprPtr>> fills;
  for (std::size_t a = 0; a < fc.dists.size(); ++a) {
    prog.addArray({"V" + std::to_string(a), rt::ElemType::F64, g,
                   fc.dists[a], {}});
  }
  auto whole = il::secLit(
      {il::TripletExpr{il::intConst(1), il::intConst(fc.n), {}}});
  for (std::size_t a = 0; a < fc.dists.size(); ++a)
    fills.emplace_back(static_cast<int>(a), whole);
  il::ExprPtr i = il::scalar("i");
  auto ai = il::secPoint({i});
  il::ExprPtr rhs = il::realConst(fc.bias);
  for (const auto& t : fc.terms)
    rhs = il::add(rhs, il::mul(il::realConst(t.coef),
                               il::elem(t.sym, il::secPoint({i}))));
  prog.body = il::block({
      il::kernel("fill", fills),
      il::forLoop("i", il::intConst(1), il::intConst(fc.n),
                  il::block({il::elemAssign(0, ai, rhs)})),
  });
  return prog;
}

double expectedAt(const FuzzCase& fc, Index i) {
  Point pt{i};
  double v = fc.bias;
  for (const auto& t : fc.terms)
    v += t.coef * apps::cellValueAt(fc.seed, t.sym, pt);
  return v;
}

void runAndCheck(const il::Program& prog, const FuzzCase& fc,
                 const char* stage) {
  analysis::VerifyResult vr = analysis::verifyProgram(prog);
  EXPECT_EQ(vr.errors(), 0u)
      << stage << " seed " << fc.seed << ": verifier false positive\n"
      << analysis::formatDiagnostics(prog, vr) << il::printProgram(prog);
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  Interpreter in(prog, opts);
  apps::registerFillKernel(in, fc.seed);
  in.run();
  auto vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, fc.n)});
  for (Index i = 1; i <= fc.n; ++i)
    ASSERT_NEAR(vals[static_cast<std::size_t>(i - 1)], expectedAt(fc, i),
                1e-12)
        << stage << " seed " << fc.seed << " element " << i << "\n"
        << il::printProgram(prog);
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u) << stage;
  EXPECT_EQ(in.runtime().fabric().pendingReceiveCount(), 0u) << stage;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, EveryStageMatchesSequentialSemantics) {
  for (std::uint64_t k = 0; k < 6; ++k) {
    FuzzCase fc = randomCase(GetParam() * 1000 + k);
    il::Program seq = buildCase(fc);
    il::Program lowered = lowerOwnerComputes(seq);
    runAndCheck(lowered, fc, "lowered");
    il::Program rte = redundantTransferElimination(lowered);
    runAndCheck(rte, fc, "rte");
    il::Program clean = deadArrayElimination(rte);
    // deadArrayElimination may renumber; lhs is still symbol 0 ("V0").
    runAndCheck(clean, fc, "dead-array-elim");
    il::Program bound = commBinding(clean);
    runAndCheck(bound, fc, "bound");
    // Vectorization/CRE apply only to single-rectangle partitions; they
    // must leave other programs untouched-but-correct either way.
    il::Program vec = messageVectorization(clean);
    runAndCheck(vec, fc, "vectorized");
    il::Program cre = computeRuleElimination(vec);
    runAndCheck(cre, fc, "cre");
    il::Program hoisted = recvHoisting(cre);
    runAndCheck(hoisted, fc, "hoisted");
    il::Program full = commBinding(hoisted);
    runAndCheck(full, fc, "full");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace xdp::opt
