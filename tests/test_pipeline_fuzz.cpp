// Differential fuzzing of the whole compiler: random sequential programs
// (random distributions, random affine-rhs expressions over several
// arrays, plus an integer preamble drawn from an extreme constant pool)
// are lowered and pushed through randomized pass orderings; every variant
// must compute exactly the result of direct sequential evaluation.
//
// Three-way oracle per stage: the closed-form expected values (computed
// with the same xdp::arith wrap helpers the compiler uses), the
// tree-walking interpreter, and the bytecode VM must all agree — on
// element values and on the logical execution counters.
//
// The extreme pool (INT64_MIN, INT64_MAX, -1, 0) exercises the wrap-
// modulo-2^64 semantics of Add/Sub/Mul through every pass (const-fold
// must wrap exactly like the runtime), and the optional zero-trip loop
// wraps a trapping division the program never executes — no stage may
// speculate it into a fault.
//
// The static verifier rides along as a second oracle: every stage that
// executes correctly must also verify with zero errors, so a verifier
// false positive (or a pass bug the runtime masks) fails here.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "xdp/analysis/verifier.hpp"
#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/support/arith.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::opt {
namespace {

using interp::Backend;
using interp::Interpreter;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

struct FuzzCase {
  Index n;
  int nprocs;
  std::uint64_t seed;
  std::vector<dist::Distribution> dists;  // one per array (A = lhs first)
  // rhs = sum over terms of coef * X[i], where X is one of the arrays.
  struct Term {
    int sym;
    double coef;
  };
  std::vector<Term> terms;
  double bias = 0.0;
  // Integer preamble: z = (((c0 op1 c1) op2 c2) ...) with wrap semantics,
  // then zm = z mod 7 is added into every element (zm is small, so the
  // f64 arithmetic stays exact).
  std::vector<Index> ints;        // c0..cK, from the extreme pool
  std::vector<il::BinOp> intOps;  // op1..opK: Add/Sub/Mul
  bool zeroTripTrap = false;      // add `do zz = 1, 0: V0[1] = 1/0`
};

dist::Distribution randomDist(Rng& rng, const Section& g, int nprocs) {
  switch (rng.below(3)) {
    case 0:
      return dist::Distribution(g, {dist::DimSpec::block(nprocs)});
    case 1:
      return dist::Distribution(g, {dist::DimSpec::cyclic(nprocs)});
    default:
      return dist::Distribution(
          g, {dist::DimSpec::blockCyclic(
                 nprocs, static_cast<Index>(rng.range(1, 4)))});
  }
}

FuzzCase randomCase(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase fc;
  fc.seed = seed;
  fc.n = rng.range(8, 40);
  fc.nprocs = static_cast<int>(rng.range(2, 4));
  Section g{Triplet(1, fc.n)};
  const int nArrays = static_cast<int>(rng.range(2, 4));
  for (int a = 0; a < nArrays; ++a)
    fc.dists.push_back(randomDist(rng, g, fc.nprocs));
  const int nTerms = static_cast<int>(rng.range(1, 3));
  for (int t = 0; t < nTerms; ++t) {
    FuzzCase::Term term;
    term.sym = static_cast<int>(rng.below(static_cast<std::uint64_t>(nArrays)));
    term.coef = static_cast<double>(rng.range(-3, 3));
    if (term.coef == 0) term.coef = 1.0;
    fc.terms.push_back(term);
  }
  fc.bias = static_cast<double>(rng.range(-5, 5)) * 0.25;

  const Index kPool[] = {std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max(),
                         -1,
                         0,
                         1,
                         rng.range(-100, 100)};
  const std::size_t nInts = static_cast<std::size_t>(rng.range(2, 4));
  for (std::size_t k = 0; k < nInts; ++k)
    fc.ints.push_back(kPool[rng.below(std::size(kPool))]);
  const il::BinOp kOps[] = {il::BinOp::Add, il::BinOp::Sub, il::BinOp::Mul};
  for (std::size_t k = 0; k + 1 < nInts; ++k)
    fc.intOps.push_back(kOps[rng.below(std::size(kOps))]);
  fc.zeroTripTrap = rng.below(2) == 0;
  return fc;
}

/// The preamble's final small value, via the same wrap helpers the
/// interpreter, the VM and the const-folder share.
Index preambleValue(const FuzzCase& fc) {
  Index z = fc.ints[0];
  for (std::size_t k = 0; k < fc.intOps.size(); ++k) {
    switch (fc.intOps[k]) {
      case il::BinOp::Add:
        z = arith::wrapAdd(z, fc.ints[k + 1]);
        break;
      case il::BinOp::Sub:
        z = arith::wrapSub(z, fc.ints[k + 1]);
        break;
      default:
        z = arith::wrapMul(z, fc.ints[k + 1]);
        break;
    }
  }
  return *arith::tryFoldMod(z, 7);
}

il::Program buildCase(const FuzzCase& fc) {
  il::Program prog;
  prog.nprocs = fc.nprocs;
  Section g{Triplet(1, fc.n)};
  std::vector<std::pair<int, il::SectionExprPtr>> fills;
  for (std::size_t a = 0; a < fc.dists.size(); ++a) {
    prog.addArray({"V" + std::to_string(a), rt::ElemType::F64, g,
                   fc.dists[a], {}});
  }
  auto whole = il::secLit(
      {il::TripletExpr{il::intConst(1), il::intConst(fc.n), {}}});
  for (std::size_t a = 0; a < fc.dists.size(); ++a)
    fills.emplace_back(static_cast<int>(a), whole);
  il::ExprPtr i = il::scalar("i");
  auto ai = il::secPoint({i});
  il::ExprPtr rhs = il::realConst(fc.bias);
  for (const auto& t : fc.terms)
    rhs = il::add(rhs, il::mul(il::realConst(t.coef),
                               il::elem(t.sym, il::secPoint({i}))));
  rhs = il::add(rhs, il::scalar("zm"));

  il::ExprPtr z = il::intConst(fc.ints[0]);
  for (std::size_t k = 0; k < fc.intOps.size(); ++k)
    z = il::bin(fc.intOps[k], std::move(z), il::intConst(fc.ints[k + 1]));
  std::vector<il::StmtPtr> body;
  body.push_back(il::kernel("fill", fills));
  body.push_back(il::scalarAssign("z", std::move(z)));
  body.push_back(il::scalarAssign(
      "zm", il::bin(il::BinOp::Mod, il::scalar("z"), il::intConst(7))));
  if (fc.zeroTripTrap) {
    // Never executes; no pass and no backend may turn the trapping
    // division into a fault.
    body.push_back(il::forLoop(
        "zz", il::intConst(1), il::intConst(0),
        il::block({il::elemAssign(
            0, il::secPoint({il::intConst(1)}),
            il::bin(il::BinOp::Div, il::intConst(1), il::intConst(0)))})));
  }
  body.push_back(il::forLoop("i", il::intConst(1), il::intConst(fc.n),
                             il::block({il::elemAssign(0, ai, rhs)})));
  prog.body = il::block(std::move(body));
  return prog;
}

double expectedAt(const FuzzCase& fc, Index i) {
  Point pt{i};
  double v = fc.bias + static_cast<double>(preambleValue(fc));
  for (const auto& t : fc.terms)
    v += t.coef * apps::cellValueAt(fc.seed, t.sym, pt);
  return v;
}

struct BackendRun {
  std::vector<double> vals;
  interp::InterpStats stats;
};

BackendRun runOn(const il::Program& prog, const FuzzCase& fc, Backend be) {
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  interp::InterpOptions io;
  io.backend = be;
  Interpreter in(prog, opts, io);
  apps::registerFillKernel(in, fc.seed);
  in.run();
  BackendRun r;
  r.vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, fc.n)});
  r.stats = in.totalStats();
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
  EXPECT_EQ(in.runtime().fabric().pendingReceiveCount(), 0u);
  return r;
}

void runAndCheck(const il::Program& prog, const FuzzCase& fc,
                 const char* stage) {
  analysis::VerifyResult vr = analysis::verifyProgram(prog);
  EXPECT_EQ(vr.errors(), 0u)
      << stage << " seed " << fc.seed << ": verifier false positive\n"
      << analysis::formatDiagnostics(prog, vr) << il::printProgram(prog);
  BackendRun tree = runOn(prog, fc, Backend::TreeWalk);
  BackendRun vm = runOn(prog, fc, Backend::Bytecode);
  for (Index i = 1; i <= fc.n; ++i) {
    const auto k = static_cast<std::size_t>(i - 1);
    ASSERT_NEAR(tree.vals[k], expectedAt(fc, i), 1e-12)
        << stage << " seed " << fc.seed << " element " << i << "\n"
        << il::printProgram(prog);
    ASSERT_EQ(tree.vals[k], vm.vals[k])
        << stage << " seed " << fc.seed << " element " << i
        << ": backends diverge\n"
        << il::printProgram(prog);
  }
  EXPECT_EQ(tree.stats.stmtsExecuted, vm.stats.stmtsExecuted) << stage;
  EXPECT_EQ(tree.stats.loopIterations, vm.stats.loopIterations) << stage;
  EXPECT_EQ(tree.stats.rulesEvaluated, vm.stats.rulesEvaluated) << stage;
  EXPECT_EQ(tree.stats.rulesTrue, vm.stats.rulesTrue) << stage;
  EXPECT_EQ(tree.stats.elemAssigns, vm.stats.elemAssigns) << stage;
  EXPECT_EQ(tree.stats.kernelCalls, vm.stats.kernelCalls) << stage;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, EveryStageMatchesSequentialSemantics) {
  for (std::uint64_t k = 0; k < 6; ++k) {
    FuzzCase fc = randomCase(GetParam() * 1000 + k);
    il::Program seq = buildCase(fc);
    il::Program lowered = lowerOwnerComputes(seq);
    runAndCheck(lowered, fc, "lowered");
    il::Program folded = constantFolding(lowered);
    runAndCheck(folded, fc, "const-fold");
    il::Program rte = redundantTransferElimination(lowered);
    runAndCheck(rte, fc, "rte");
    il::Program clean = deadArrayElimination(rte);
    // deadArrayElimination may renumber; lhs is still symbol 0 ("V0").
    runAndCheck(clean, fc, "dead-array-elim");
    il::Program bound = commBinding(clean);
    runAndCheck(bound, fc, "bound");
    // Vectorization/CRE apply only to single-rectangle partitions; they
    // must leave other programs untouched-but-correct either way.
    il::Program vec = messageVectorization(clean);
    runAndCheck(vec, fc, "vectorized");
    il::Program cre = computeRuleElimination(vec);
    runAndCheck(cre, fc, "cre");
    il::Program hoisted = recvHoisting(cre);
    runAndCheck(hoisted, fc, "hoisted");
    il::Program full = commBinding(hoisted);
    runAndCheck(full, fc, "full");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace xdp::opt
