// Hang-watchdog tests: quiescence-with-blocked-processors is diagnosed
// within the watchdog window and surfaces as a structured DeadlockError
// naming the blocked processors, the unmatched names and the owning
// sections — instead of the process hanging forever. Also covers the
// end-of-run match-state hygiene checks and multi-node failure
// aggregation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "xdp/rt/proc.hpp"
#include "xdp/support/check.hpp"

namespace xdp::rt {
namespace {

using dist::DimSpec;
using sec::Section;
using sec::Triplet;

RuntimeOptions watched(int ms = 100) {
  RuntimeOptions o;
  o.debugChecks = true;
  o.watchdogMs = ms;
  return o;
}

int declareBlocked(Runtime& rt, const char* name, sec::Index n, int procs) {
  return rt.declareArray<double>(
      name, Section{Triplet(1, n)},
      Distribution(Section{Triplet(1, n)}, {DimSpec::block(procs)}));
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(WatchdogConfig, ResolvesConfiguredValueThenEnvThenDefault) {
  EXPECT_EQ(resolveWatchdogMs(250), 250);
  EXPECT_EQ(resolveWatchdogMs(0), 0);
  ::setenv("XDP_WATCHDOG_MS", "1234", 1);
  EXPECT_EQ(resolveWatchdogMs(-1), 1234);
  ::setenv("XDP_WATCHDOG_MS", "nonsense", 1);
  EXPECT_EQ(resolveWatchdogMs(-1), 10000);
  ::unsetenv("XDP_WATCHDOG_MS");
  EXPECT_EQ(resolveWatchdogMs(-1), 10000);
}

TEST(WatchdogConfig, PollResolvesConfiguredValueThenEnvThenFraction) {
  // An explicit poll period always wins.
  EXPECT_EQ(resolveWatchdogPollMs(50, 1000), 50);
  // -1 reads the environment.
  ::setenv("XDP_WATCHDOG_POLL_MS", "33", 1);
  EXPECT_EQ(resolveWatchdogPollMs(-1, 1000), 33);
  // 0 means "derive from the window" even when the env var is set.
  EXPECT_EQ(resolveWatchdogPollMs(0, 1000), 125);
  ::unsetenv("XDP_WATCHDOG_POLL_MS");
  // The derived fraction is watchdogMs/8 clamped to [1, 200].
  EXPECT_EQ(resolveWatchdogPollMs(-1, 1000), 125);
  EXPECT_EQ(resolveWatchdogPollMs(-1, 4), 1);
  EXPECT_EQ(resolveWatchdogPollMs(-1, 100000), 200);
}

TEST(WatchdogConfig, RuntimeOverrideChangesEffectiveWindow) {
  Runtime rt(2, watched(5000));
  EXPECT_EQ(rt.effectiveWatchdogMs(), 5000);
  rt.setWatchdogMs(80);
  EXPECT_EQ(rt.effectiveWatchdogMs(), 80);
  rt.setWatchdogMs(0);  // disabled
  EXPECT_EQ(rt.effectiveWatchdogMs(), 0);
  ::setenv("XDP_WATCHDOG_MS", "777", 1);
  rt.setWatchdogMs(-1);  // re-read the environment
  EXPECT_EQ(rt.effectiveWatchdogMs(), 777);
  ::unsetenv("XDP_WATCHDOG_MS");
}

TEST(WatchdogConfig, OverriddenWindowGovernsTheNextRun) {
  // Construct with a window long enough that the test would time out if
  // the override were ignored, then shrink it programmatically; the
  // deadlock must be diagnosed under the small window.
  Runtime rt(2, watched(60000));
  rt.setWatchdogMs(100);
  int A = declareBlocked(rt, "A", 8, 2);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(rt.run([&](Proc& p) {
                 if (p.mypid() == 0) {
                   p.recv(A, Section{Triplet(1, 4)}, A, Section{Triplet(5, 8)});
                   p.await(A, Section{Triplet(1, 4)});
                 }
               }),
               DeadlockError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 30000);
}

TEST(Watchdog, OrphanedReceiveIsDiagnosedAsDeadlock) {
  Runtime rt(2, watched());
  int A = declareBlocked(rt, "A", 8, 2);
  try {
    rt.run([&](Proc& p) {
      if (p.mypid() == 0) {
        // Receive a message nobody will ever send, then wait on it.
        p.recv(A, Section{Triplet(1, 4)}, A, Section{Triplet(5, 8)});
        p.await(A, Section{Triplet(1, 4)});
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_TRUE(contains(e.summary(), "deadlock"));
    EXPECT_TRUE(contains(e.summary(), "1 of 2 processors blocked"));
    const std::string& rep = e.report();
    EXPECT_TRUE(contains(rep, "=== XDP deadlock report ==="));
    EXPECT_TRUE(contains(rep, "p0: blocked await"));  // who
    EXPECT_TRUE(contains(rep, "'A'"));                // on what symbol
    EXPECT_TRUE(contains(rep, "p1: finished"));
    EXPECT_TRUE(contains(rep, "pending receives (1):"));
    EXPECT_TRUE(contains(rep, "undelivered messages (0):"));
    // Owning-section state of the blocked processor rides along.
    EXPECT_TRUE(contains(rep, "symbol table, processor p0"));
    // what() = summary + report, so a bare `catch (std::exception&)`
    // logging e.what() still shows the whole story.
    EXPECT_TRUE(contains(e.what(), "=== XDP deadlock report ==="));
  }
}

TEST(Watchdog, OrphanedSendLeavesUndeliveredEvidenceInTheReport) {
  Runtime rt(2, watched());
  int A = declareBlocked(rt, "A", 8, 2);
  try {
    rt.run([&](Proc& p) {
      if (p.mypid() == 0) {
        // A send whose name matches no receive: parked at p1 forever.
        p.send(A, Section{Triplet(1, 4)}, std::vector<int>{1});
      } else {
        // p1 waits for a *different* name that never arrives.
        p.recv(A, Section{Triplet(5, 7)}, A, Section{Triplet(1, 3)});
        p.await(A, Section{Triplet(5, 7)});
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string& rep = e.report();
    EXPECT_TRUE(contains(rep, "p1: blocked await"));
    EXPECT_TRUE(contains(rep, "undelivered messages (1):"));
    EXPECT_TRUE(contains(rep, "p0 -> p1"));  // the orphaned send, named
    EXPECT_TRUE(contains(rep, "pending receives (1):"));
  }
}

TEST(Watchdog, IncompleteBarrierIsDiagnosed) {
  Runtime rt(2, watched());
  try {
    rt.run([&](Proc& p) {
      if (p.mypid() == 0) p.barrier();  // p1 never arrives
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_TRUE(contains(e.what(), "p0"));
    EXPECT_TRUE(contains(e.what(), "barrier"));
    EXPECT_TRUE(contains(e.report(), "waiting at barrier (1 of 2 arrived)"));
  }
}

TEST(Watchdog, AllNodeFailuresAreAggregated) {
  // Two processors hang independently; the rethrown error must name BOTH,
  // not just the lowest pid, and keep the full report of the diagnosis.
  Runtime rt(3, watched());
  int A = declareBlocked(rt, "A", 9, 3);
  try {
    rt.run([&](Proc& p) {
      if (p.mypid() == 0) {
        p.recv(A, Section{Triplet(1, 3)}, A, Section{Triplet(4, 6)});
        p.await(A, Section{Triplet(1, 3)});
      } else if (p.mypid() == 1) {
        p.recv(A, Section{Triplet(4, 6)}, A, Section{Triplet(7, 9)});
        p.await(A, Section{Triplet(4, 6)});
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_TRUE(contains(e.summary(), "2 of 3 SPMD nodes failed"));
    EXPECT_TRUE(contains(e.summary(), "p0:"));
    EXPECT_TRUE(contains(e.summary(), "p1:"));
    EXPECT_TRUE(contains(e.report(), "=== XDP deadlock report ==="));
  }
}

TEST(Watchdog, RuntimeIsReusableAfterADiagnosedDeadlock) {
  Runtime rt(2, watched());
  int A = declareBlocked(rt, "A", 8, 2);
  EXPECT_THROW(rt.run([&](Proc& p) {
                 if (p.mypid() == 0) {
                   p.recv(A, Section{Triplet(1, 4)}, A, Section{Triplet(5, 8)});
                   p.await(A, Section{Triplet(1, 4)});
                 }
               }),
               DeadlockError);
  // The failed run leaked a posted receive into the fabric; the next run
  // must start from clean match state and finish with the end-of-run
  // hygiene checks green.
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      p.send(A, Section{Triplet(1, 4)}, std::vector<int>{1});
    } else {
      p.recv(A, Section{Triplet(5, 8)}, A, Section{Triplet(1, 4)});
      EXPECT_TRUE(p.await(A, Section{Triplet(5, 8)}));
    }
  });
  EXPECT_EQ(rt.fabric().undeliveredCount(), 0u);
  EXPECT_EQ(rt.fabric().pendingReceiveCount(), 0u);
}

TEST(Watchdog, NoFalsePositiveOnASlowButLiveRun) {
  // Real time passes (well past several poll periods) while processors
  // alternate between computing, sleeping and genuinely-but-temporarily
  // blocking; the watchdog must stay quiet.
  Runtime rt(2, watched(40));
  int A = declareBlocked(rt, "A", 8, 2);
  rt.run([&](Proc& p) {
    for (int it = 0; it < 8; ++it) {
      if (p.mypid() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        p.send(A, Section{Triplet(1, 4)}, std::vector<int>{1});
      } else {
        p.recv(A, Section{Triplet(5, 8)}, A, Section{Triplet(1, 4)});
        EXPECT_TRUE(p.await(A, Section{Triplet(5, 8)}));
      }
      p.barrier();
    }
  });
}

TEST(Watchdog, FinishedRunWithUnmatchedReceiveIsAUsageError) {
  // Nothing hangs — every thread returns — but the region ends with a
  // posted receive no send ever matched. Under debugChecks that is an XDP
  // usage error, reported at the region boundary.
  Runtime rt(2, watched());
  int A = declareBlocked(rt, "A", 8, 2);
  EXPECT_THROW(rt.run([&](Proc& p) {
                 if (p.mypid() == 0)
                   p.recv(A, Section{Triplet(1, 4)}, A, Section{Triplet(5, 8)});
               }),
               UsageError);
}

TEST(Watchdog, DroppedMessageHangsAreDiagnosedUnderALossyPlan) {
  // Fault injection + watchdog, end to end: a plan that drops everything
  // turns a correct exchange into a hang, the watchdog converts the hang
  // into a DeadlockError, and the lossy plan waives the end-of-run
  // hygiene checks (the dropped send legitimately never matched).
  RuntimeOptions o = watched();
  net::FaultPlan plan;
  plan.dropProb = 1.0;
  o.faultPlan = plan;
  Runtime rt(2, o);
  int A = declareBlocked(rt, "A", 8, 2);
  try {
    rt.run([&](Proc& p) {
      if (p.mypid() == 0) {
        p.send(A, Section{Triplet(1, 4)}, std::vector<int>{1});
      } else {
        p.recv(A, Section{Triplet(5, 8)}, A, Section{Triplet(1, 4)});
        p.await(A, Section{Triplet(5, 8)});
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_TRUE(contains(e.report(), "p1: blocked await"));
  }
  EXPECT_GE(rt.fabric().faultStats().dropped, 1u);
}

TEST(Watchdog, CrashFaultSurfacesAsFaultAbort) {
  RuntimeOptions o = watched();
  net::FaultPlan plan;
  plan.crashPids = {0};
  plan.crashAfterSends = 0;
  o.faultPlan = plan;
  Runtime rt(2, o);
  int A = declareBlocked(rt, "A", 8, 2);
  // p1 does not depend on p0's message, so the single failure is the
  // crashed endpoint's own FaultAbort, rethrown with its type intact.
  EXPECT_THROW(rt.run([&](Proc& p) {
                 if (p.mypid() == 0)
                   p.send(A, Section{Triplet(1, 4)}, std::vector<int>{1});
               }),
               FaultAbort);
}

}  // namespace
}  // namespace xdp::rt
