// Constant folding + guard simplification on IL+XDP.
#include <gtest/gtest.h>

#include <limits>

#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"

namespace xdp::opt {
namespace {

using sec::Section;
using sec::Triplet;

il::Program wrap(il::StmtPtr body) {
  il::Program p;
  p.nprocs = 2;
  Section g{Triplet(1, 8)};
  p.addArray({"A", rt::ElemType::F64, g,
              dist::Distribution(g, {dist::DimSpec::block(2)}), {}});
  p.body = std::move(body);
  return p;
}

std::string foldAndPrint(il::StmtPtr body) {
  il::Program p = wrap(std::move(body));
  il::Program out = constantFolding(p);
  return il::printStmt(out, out.body);
}

TEST(ConstFold, ArithmeticFolds) {
  auto s = foldAndPrint(il::block({il::scalarAssign(
      "x", il::add(il::mul(il::intConst(3), il::intConst(4)),
                   il::intConst(1)))}));
  EXPECT_EQ(s, "x = 13\n");
}

TEST(ConstFold, MinMaxAndComparisons) {
  auto s = foldAndPrint(il::block({
      il::scalarAssign("a", il::bin(il::BinOp::Max, il::intConst(1),
                                    il::intConst(5))),
      il::scalarAssign("b", il::bin(il::BinOp::Le, il::intConst(2),
                                    il::intConst(2))),
  }));
  EXPECT_EQ(s, "a = 5\nb = 1\n");
}

TEST(ConstFold, MixedIntRealPromotes) {
  auto s = foldAndPrint(il::block({il::scalarAssign(
      "x", il::mul(il::intConst(2), il::realConst(1.5)))}));
  EXPECT_EQ(s, "x = 3\n");  // real 3.0 prints as 3
}

TEST(ConstFold, LogicalIdentitiesWithOneSide) {
  // true && e => e ; e || true => true — even when e isn't constant.
  auto e = il::bin(il::BinOp::Lt, il::mypid(), il::intConst(1));
  auto s1 = foldAndPrint(
      il::block({il::guarded(il::land(il::intConst(1), e),
                             il::block({il::computeCost(il::intConst(1))}))}));
  EXPECT_EQ(s1, "(mypid < 1) : {\n  compute(1)\n}\n");
  auto s2 = foldAndPrint(
      il::block({il::guarded(il::bin(il::BinOp::Or, e, il::intConst(1)),
                             il::block({il::computeCost(il::intConst(1))}))}));
  EXPECT_EQ(s2, "compute(1)\n");  // guard true: body inlined
}

TEST(ConstFold, FalseGuardDeleted) {
  auto s = foldAndPrint(il::block({
      il::guarded(il::bin(il::BinOp::Gt, il::intConst(1), il::intConst(2)),
                  il::block({il::computeCost(il::intConst(9))})),
      il::scalarAssign("x", il::intConst(0)),
  }));
  EXPECT_EQ(s, "x = 0\n");
}

TEST(ConstFold, StaticallyEmptyLoopDeleted) {
  auto s = foldAndPrint(il::block({
      il::forLoop("i", il::intConst(5), il::intConst(2),
                  il::block({il::computeCost(il::intConst(1))})),
      il::scalarAssign("x", il::intConst(1)),
  }));
  EXPECT_EQ(s, "x = 1\n");
}

TEST(ConstFold, DivisionByZeroLeftForRuntime) {
  auto s = foldAndPrint(il::block({il::scalarAssign(
      "x", il::bin(il::BinOp::Div, il::intConst(4), il::intConst(0)))}));
  EXPECT_EQ(s, "x = (4 / 0)\n");
}

TEST(ConstFold, OverflowingDivisionLeftForRuntime) {
  // INT64_MIN / -1 (and % -1) is the one overflowing signed division;
  // folding it would have to either trap at compile time (wrong: the
  // statement may never execute) or invent a wrapped value the runtime
  // doesn't produce (it raises UsageError). It must stay unfolded.
  constexpr sec::Index kMin = std::numeric_limits<std::int64_t>::min();
  auto sDiv = foldAndPrint(il::block({il::scalarAssign(
      "x", il::bin(il::BinOp::Div, il::intConst(kMin), il::intConst(-1)))}));
  EXPECT_EQ(sDiv, "x = (-9223372036854775808 / -1)\n");
  auto sMod = foldAndPrint(il::block({il::scalarAssign(
      "x", il::bin(il::BinOp::Mod, il::intConst(kMin), il::intConst(-1)))}));
  EXPECT_EQ(sMod, "x = (-9223372036854775808 % -1)\n");
  // Non-overflowing divisions by -1 still fold.
  auto ok = foldAndPrint(il::block({il::scalarAssign(
      "x", il::bin(il::BinOp::Div, il::intConst(42), il::intConst(-1)))}));
  EXPECT_EQ(ok, "x = -42\n");
}

TEST(ConstFold, IntArithmeticFoldsWrapLikeRuntime) {
  // Add/Sub/Mul/Neg wrap modulo 2^64 at fold time exactly as the
  // interpreter wraps at run time (both via xdp::support/arith.hpp) —
  // folding must never change an observable value.
  constexpr sec::Index kMin = std::numeric_limits<std::int64_t>::min();
  constexpr sec::Index kMax = std::numeric_limits<std::int64_t>::max();
  auto s = foldAndPrint(il::block({
      il::scalarAssign("a", il::add(il::intConst(kMax), il::intConst(1))),
      il::scalarAssign("b", il::mul(il::intConst(kMin), il::intConst(-1))),
      il::scalarAssign("c", il::neg(il::intConst(kMin))),
      il::scalarAssign("d", il::sub(il::intConst(kMin), il::intConst(1))),
  }));
  EXPECT_EQ(s,
            "a = -9223372036854775808\n"
            "b = -9223372036854775808\n"
            "c = -9223372036854775808\n"
            "d = 9223372036854775807\n");
}

TEST(ConstFold, TrappingDivisorUnderFalseGuardDeletedNotSpeculated) {
  // Deleting a statically-false guard must not evaluate (or fold) the
  // trapping division inside it — the original program never runs it.
  auto s = foldAndPrint(il::block({
      il::guarded(il::bin(il::BinOp::Gt, il::intConst(1), il::intConst(2)),
                  il::block({il::scalarAssign(
                      "x", il::bin(il::BinOp::Div, il::intConst(1),
                                   il::intConst(0)))})),
      il::scalarAssign("y", il::intConst(3)),
  }));
  EXPECT_EQ(s, "y = 3\n");
  // Same for a statically-empty loop around a trapping body.
  auto s2 = foldAndPrint(il::block({
      il::forLoop("i", il::intConst(5), il::intConst(2),
                  il::block({il::scalarAssign(
                      "x", il::bin(il::BinOp::Div, il::intConst(1),
                                   il::intConst(0)))})),
      il::scalarAssign("y", il::intConst(4)),
  }));
  EXPECT_EQ(s2, "y = 4\n");
}

TEST(ConstFold, DoubleNegations) {
  auto s = foldAndPrint(il::block({il::scalarAssign(
      "x", il::neg(il::neg(il::scalar("y"))))}));
  EXPECT_EQ(s, "x = y\n");
  auto s2 = foldAndPrint(il::block({il::guarded(
      il::lnot(il::lnot(il::iown(0, il::secPoint({il::intConst(1)})))),
      il::block({il::computeCost(il::intConst(1))}))}));
  EXPECT_EQ(s2, "iown(A[1]) : {\n  compute(1)\n}\n");
}

TEST(ConstFold, CleansVectorizedSelfGuards) {
  // After vectorization the send/recv loops carry `q != mypid && ...`
  // guards; folding inside a concrete program must preserve semantics.
  auto cfg = apps::vecAddMisaligned(32, 4);
  il::Program vec = messageVectorization(
      lowerOwnerComputes(apps::buildVecAdd(cfg)));
  il::Program folded = constantFolding(vec);
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  interp::Interpreter in(folded, opts);
  apps::registerFillKernel(in, cfg.seed);
  in.run();
  auto vals = apps::gatherF64(in.runtime(), folded.findSymbol("A"),
                              Section{Triplet(1, 32)});
  for (sec::Index i = 1; i <= 32; ++i)
    EXPECT_DOUBLE_EQ(vals[static_cast<std::size_t>(i - 1)],
                     apps::vecAddExpected(cfg, i));
}

TEST(ConstFold, FoldsInsideSectionsAndBounds) {
  auto sec = il::secLit({il::TripletExpr{
      il::add(il::intConst(1), il::intConst(1)),
      il::sub(il::intConst(10), il::intConst(4)), {}}});
  auto s = foldAndPrint(il::block({il::forLoop(
      "i", il::bin(il::BinOp::Min, il::intConst(3), il::intConst(7)),
      il::intConst(4),
      il::block({il::sendData(0, sec)}))}));
  EXPECT_EQ(s, "do i = 3, 4\n  A[2:6] ->\nenddo\n");
}

}  // namespace
}  // namespace xdp::opt
