// Unit tests for the static communication-cost analyzer (DESIGN.md §10):
// exact byte/message totals on hand-countable programs, the three event
// classes (data = payload bytes, ownership = zero bytes, ownership+value
// = payload bytes), send-to-set fanout, conditional sends degrading the
// model to inexact, the parametric lower-bound closed form on shift
// sweeps, and the checked byte arithmetic rejecting overflowing extents.
#include <gtest/gtest.h>

#include <string>

#include "xdp/analysis/cost.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/support/check.hpp"

namespace xdp::analysis {
namespace {

CostReport costOf(const std::string& src) {
  il::Program prog = il::parseProgram(src);
  return analyzeCost(prog);
}

// Processor 0 sends its left half of A (4 f64 elements = 32 bytes) to
// processor 1; fully decidable, so the model is exact.
const char* kSimpleTransfer = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : { A[1:4] -> {1} }
(mypid == 1) : {
  B[5:8] <- A[1:4]
  await(B[5:8])
}
)";

TEST(CostModel, ExactBytesOnSimpleTransfer) {
  CostReport r = costOf(kSimpleTransfer);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.bytesMoved, 32);
  EXPECT_EQ(r.messages, 1);
  ASSERT_EQ(r.perProc.size(), 2u);
  EXPECT_EQ(r.perProc[0].bytes, 32);
  EXPECT_EQ(r.perProc[0].messages, 1);
  EXPECT_EQ(r.perProc[1].bytes, 0);
  ASSERT_FALSE(r.perStmt.empty());
  EXPECT_EQ(r.perStmt[0].cls, CostClass::Data);
  EXPECT_TRUE(r.perStmt[0].definite);
  EXPECT_TRUE(r.perStmt[0].loc.valid());
}

TEST(CostModel, PureOwnershipTransferMovesZeroBytes) {
  CostReport r = costOf(R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : { A[1:4] => {1} }
(mypid == 1) : { A[1:4] <= }
)");
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.bytesMoved, 0);  // ownership messages carry no payload
  EXPECT_EQ(r.messages, 1);
  ASSERT_FALSE(r.perStmt.empty());
  EXPECT_EQ(r.perStmt[0].cls, CostClass::Own);
}

TEST(CostModel, OwnershipAndValueCountsPayloadBytes) {
  CostReport r = costOf(R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : { A[1:4] -=> {1} }
(mypid == 1) : { A[1:4] <=- }
)");
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.bytesMoved, 32);
  EXPECT_EQ(r.messages, 1);
  ASSERT_FALSE(r.perStmt.empty());
  EXPECT_EQ(r.perStmt[0].cls, CostClass::OwnVal);
}

TEST(CostModel, SendToSetFansOutPerDestination) {
  CostReport r = costOf(R"(procs 3
array A f64 [1:9] (BLOCK)
array B f64 [1:9] (BLOCK)

fill(A[1:9], B[1:9])
(mypid == 0) : { A[1:3] -> {1, 2} }
(mypid > 0) : {
  B[3 * mypid + 1 : 3 * mypid + 3] <- A[1:3]
  await(B[3 * mypid + 1 : 3 * mypid + 3])
}
)");
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.messages, 2);        // one fabric message per destination
  EXPECT_EQ(r.bytesMoved, 2 * 24);  // payload counted per destination
}

TEST(CostModel, SelfSendIsCounted) {
  // The fabric counts self-sends like any other message; so does the model.
  CostReport r = costOf(R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : {
  A[1:4] -> {0}
  B[1:4] <- A[1:4]
  await(B[1:4])
}
)");
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.bytesMoved, 32);
  EXPECT_EQ(r.messages, 1);
}

TEST(CostModel, EmptySectionTransferIsFree) {
  // The runtime skips empty-section sends entirely (no message, no bytes).
  CostReport r = costOf(R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : { A[4:3] -> {1} }
(mypid == 1) : { A[4:3] <- A[4:3] }
)");
  EXPECT_EQ(r.bytesMoved, 0);
  EXPECT_EQ(r.messages, 0);
}

TEST(CostModel, UnknownGuardMakesTheModelInexact) {
  // The guard reads an array value the abstract interpreter does not
  // track, so the send under it is conditional: excluded from the exact
  // totals and the report is flagged inexact.
  CostReport r = costOf(R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
x = 0.0
(mypid == 0) : { x = A[5] }
(x > 0.5) : { A[1:4] -> {1} }
(mypid == 1) : { A[5:8] <- A[1:4] }
)");
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(r.bytesMoved, 0);  // the conditional send is not totalled
  bool sawConditional = false;
  for (const StmtCost& s : r.perStmt) sawConditional |= !s.definite;
  EXPECT_TRUE(sawConditional);
}

TEST(CostModel, LoopMultipliesEventCounts) {
  CostReport r = costOf(R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
do t = 1, 3
  (mypid == 0) : { A[1:4] -> {1} }
  (mypid == 1) : {
    B[5:8] <- A[1:4]
    await(B[5:8])
  }
enddo
)");
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.bytesMoved, 3 * 32);
  EXPECT_EQ(r.messages, 3);
}

TEST(CostModel, ParametricBoundOnShiftSweep) {
  // do i = 2,64: A[i] = A[i-1] + A[i] over BLOCK(4) on 64 elements:
  // the window V = [1:64] spans q = 4 blocks and the offset is delta = 1,
  // so at least q - delta = 3 boundary elements must cross a processor
  // boundary under ANY placement: 24 bytes.
  il::Program prog = il::parseProgram(R"(procs 4
array A f64 [1:64] (BLOCK)

fill(A[1:64])
do i = 2, 64
  A[i] = A[i - 1] + A[i]
enddo
)");
  EXPECT_EQ(parametricLowerBound(prog), 3 * 8);
}

TEST(CostModel, ParametricBoundScalesWithOuterRepetitions) {
  // An outer time loop re-runs the sweep; after the first sweep only the
  // interior cuts (q - 2*delta) are forced per repetition.
  il::Program prog = il::parseProgram(R"(procs 4
array A f64 [1:64] (BLOCK)

fill(A[1:64])
do t = 1, 3
  do i = 2, 64
    A[i] = A[i - 1] + A[i]
  enddo
enddo
)");
  // (q - delta) + (reps - 1) * (q - 2*delta) = 3 + 2 * 2 = 7 elements.
  EXPECT_EQ(parametricLowerBound(prog), 7 * 8);
}

TEST(CostModel, ParametricBoundIsZeroWithoutCrossIterationReuse) {
  // A pure elementwise sweep (vecadd) pins nothing: an aligned placement
  // moves zero bytes, and the bound must agree.
  il::Program prog = il::parseProgram(R"(procs 4
array A f64 [1:64] (BLOCK)
array B f64 [1:64] (CYCLIC)

fill(A[1:64], B[1:64])
do i = 1, 64
  A[i] = A[i] + B[i]
enddo
)");
  EXPECT_EQ(parametricLowerBound(prog), 0);
}

TEST(CostModel, LowerBoundNeverExceedsModeledBytes) {
  const char* sources[] = {kSimpleTransfer};
  for (const char* src : sources) {
    il::Program prog = il::parseProgram(src);
    CostReport r = analyzeCost(prog);
    EXPECT_LE(r.lowerBound(), r.bytesMoved) << src;
  }
}

TEST(CostModel, PctOfOptimalClampsAndHandlesZero) {
  CostReport r;
  r.bytesMoved = 0;
  r.invariantBound = 0;
  EXPECT_DOUBLE_EQ(r.pctOfOptimal(), 100.0);
  r.bytesMoved = 200;
  r.invariantBound = 100;
  EXPECT_DOUBLE_EQ(r.pctOfOptimal(), 50.0);
  r.invariantBound = 400;  // a bound above the model would read as >100%
  EXPECT_DOUBLE_EQ(r.pctOfOptimal(), 100.0);
}

TEST(CostModel, OverflowingPayloadRaisesUsageError) {
  // 2e18 elements * 8 bytes overflows int64; the checked multiply must
  // raise a reportable UsageError, not wrap silently.
  il::Program prog = il::parseProgram(R"(procs 2
array A f64 [1:2000000000000000000] (BLOCK)

(mypid == 0) : { A[1:2000000000000000000] -> {1} }
(mypid == 1) : { A[1:2000000000000000000] <- A[1:2000000000000000000] }
)");
  EXPECT_THROW(analyzeCost(prog), UsageError);
}

TEST(CostModel, LoweredVecaddMatchesHandCount) {
  // The standard pipeline lowers the misaligned vecadd to guarded sends;
  // with A BLOCK and B CYCLIC on 4 procs every non-aligned B element
  // travels once after message vectorization: 48 elements in 12 messages.
  il::Program pre = il::parseProgram(R"(procs 4
array A f64 [1:64] (BLOCK)
array B f64 [1:64] (CYCLIC)

fill(A[1:64], B[1:64])
do i = 1, 64
  A[i] = A[i] + B[i]
enddo
)");
  opt::PassManager pm;
  for (const opt::Pass& p : opt::standardPipeline()) pm.add(p.name, p.fn);
  il::Program low = pm.run(pre, nullptr);
  CostReport r = analyzeCost(low, pre);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.bytesMoved, 384);
  EXPECT_EQ(r.messages, 12);
  EXPECT_LE(r.lowerBound(), r.bytesMoved);
}

}  // namespace
}  // namespace xdp::analysis
