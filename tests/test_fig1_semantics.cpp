// Figure 1, row by row: a consolidated specification suite. Each test
// quotes the paper's rule and pins the runtime to it. (Deeper scenario
// coverage lives in test_rt_basic / test_rt_ownership; this file is the
// spec-to-code map.)
#include <gtest/gtest.h>

#include "xdp/rt/proc.hpp"

namespace xdp::rt {
namespace {

using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

/// 2 processors; A[1:8] BLOCK => p0 owns 1:4, p1 owns 5:8.
struct Fig1 : ::testing::Test {
  RuntimeOptions debug() {
    RuntimeOptions o;
    o.debugChecks = true;
    return o;
  }
  Section g{Triplet(1, 8)};
  Section left{Triplet(1, 4)};
  Section right{Triplet(5, 8)};
};

TEST_F(Fig1, Mypid_ReturnsTheUniqueIdentifierOfP) {
  Runtime rt(4);
  rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(4)}));
  std::array<std::atomic<int>, 4> seen{};
  rt.run([&](Proc& p) {
    ASSERT_GE(p.mypid(), 0);
    ASSERT_LT(p.mypid(), 4);
    seen[static_cast<unsigned>(p.mypid())]++;
  });
  for (auto& s : seen) EXPECT_EQ(s, 1);  // unique per processor
}

TEST_F(Fig1, Mylb_SmallestOwnedIndexOrMaxint) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 1) {
      // "If any element of X is owned by p, returns the smallest index in
      // dimension d, MAXINT otherwise."
      EXPECT_EQ(p.mylb(A, g, 0), 5);
      EXPECT_EQ(p.mylb(A, Section{Triplet(7, 8)}, 0), 7);
      EXPECT_EQ(p.mylb(A, left, 0), kMaxInt);
    }
  });
}

TEST_F(Fig1, Myub_LargestOwnedIndexOrMinint) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      EXPECT_EQ(p.myub(A, g, 0), 4);
      EXPECT_EQ(p.myub(A, right, 0), kMinInt);
    }
  });
}

TEST_F(Fig1, Iown_TrueIffXOwnedByP) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    Section mine = p.mypid() == 0 ? left : right;
    Section theirs = p.mypid() == 0 ? right : left;
    EXPECT_TRUE(p.iown(A, mine));
    EXPECT_FALSE(p.iown(A, theirs));
    EXPECT_FALSE(p.iown(A, g));  // partially owned = not owned (Fig. 1)
  });
}

TEST_F(Fig1, Accessible_OwnedAndNoUncompletedReceive) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 1) {
      EXPECT_TRUE(p.accessible(A, right));   // owned, no receive pending
      EXPECT_FALSE(p.accessible(A, left));   // unowned
      p.recv(A, Section{Triplet(5)}, A, Section{Triplet(1)});
      EXPECT_FALSE(p.accessible(A, Section{Triplet(5)}));  // transitional
      // Per-section state: an unrelated element of the same partition is
      // still accessible while [5] is in flight.
      EXPECT_TRUE(p.accessible(A, Section{Triplet(7)}));
      p.barrier();
      EXPECT_TRUE(p.await(A, Section{Triplet(5)}));
      EXPECT_TRUE(p.accessible(A, Section{Triplet(5)}));
    } else {
      p.barrier();
      p.send(A, Section{Triplet(1)}, std::vector<int>{1});
    }
  });
}

TEST_F(Fig1, Await_FalseIfUnownedElseBlocksUntilAccessible) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    Section theirs = p.mypid() == 0 ? right : left;
    EXPECT_FALSE(p.await(A, theirs));  // "Returns false if X is unowned"
    Section mine = p.mypid() == 0 ? left : right;
    EXPECT_TRUE(p.await(A, mine));  // accessible: returns true at once
  });
}

TEST_F(Fig1, SendE_InitiatesNameAndValueToUnspecifiedProcessor) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      p.set<double>(A, Point{2}, 9.5);
      p.send(A, Section{Triplet(2)});  // E -> : destination unspecified
    } else {
      p.recv(A, Section{Triplet(6)}, A, Section{Triplet(2)});
      EXPECT_TRUE(p.await(A, Section{Triplet(6)}));
      EXPECT_DOUBLE_EQ(p.get<double>(A, Point{6}), 9.5);
    }
  });
  EXPECT_EQ(rt.fabric().totalStats().rendezvousSends, 1u);
}

TEST_F(Fig1, SendES_SendsToEveryProcessorInS) {
  Runtime rt(4, debug());
  Section gp{Triplet(0, 3)};
  int A = rt.declareArray<double>("A", gp, Distribution(gp, {DimSpec::block(4)}));
  Section gi{Triplet(0, 3)};
  int R = rt.declareArray<double>("R", gi, Distribution(gi, {DimSpec::block(4)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      p.set<double>(A, Point{0}, 4.25);
      p.send(A, Section{Triplet(0)}, std::vector<int>{1, 2, 3});  // E -> S
    } else {
      Section mine{Triplet(p.mypid())};
      p.recv(R, mine, A, Section{Triplet(0)});
      EXPECT_TRUE(p.await(R, mine));
      EXPECT_DOUBLE_EQ(p.get<double>(R, Point{p.mypid()}), 4.25);
    }
  });
  EXPECT_EQ(rt.fabric().totalStats().directSends, 3u);
}

TEST_F(Fig1, OwnershipSend_BlocksUntilAccessibleThenRelinquishes) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      p.sendOwnership(A, left, /*withValue=*/false);  // E =>
      EXPECT_FALSE(p.iown(A, left));  // relinquished
    } else {
      p.recvOwnership(A, left, /*withValue=*/false);
      EXPECT_TRUE(p.await(A, left));
    }
  });
  EXPECT_EQ(rt.fabric().totalStats().bytesSent, 0u);  // no value travels
}

TEST_F(Fig1, OwnershipValueSend_MovesOwnershipAndValue) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      p.write<double>(A, left, std::vector<double>{1, 2, 3, 4});
      p.sendOwnership(A, left, /*withValue=*/true);  // E -=>
    } else {
      p.recvOwnership(A, left, /*withValue=*/true);  // U <=-
      EXPECT_TRUE(p.await(A, left));
      EXPECT_EQ(p.read<double>(A, left), (std::vector<double>{1, 2, 3, 4}));
    }
  });
}

TEST_F(Fig1, Recv_BlocksUntilEAccessibleThenInitiates) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 1) {
      // Two receives into the same element: the second's initiation must
      // block until the first completes (E must be accessible).
      p.recv(A, Section{Triplet(5)}, A, Section{Triplet(1)});
      p.barrier();  // let p0 send the first value
      p.recv(A, Section{Triplet(5)}, A, Section{Triplet(2)});  // blocks
      EXPECT_TRUE(p.await(A, Section{Triplet(5)}));
      EXPECT_DOUBLE_EQ(p.get<double>(A, Point{5}), 2.0);
    } else {
      p.set<double>(A, Point{1}, 1.0);
      p.set<double>(A, Point{2}, 2.0);
      p.barrier();
      p.send(A, Section{Triplet(1)}, std::vector<int>{1});
      p.send(A, Section{Triplet(2)}, std::vector<int>{1});
    }
  });
}

TEST_F(Fig1, OwnershipReceive_OnlyIfUnowned) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      // "Ownership of a section can only be received if the section was
      // unowned."
      EXPECT_THROW(p.recvOwnership(A, left, true), xdp::UsageError);
    }
  });
}

TEST_F(Fig1, States_UnownedTransitionalAccessible) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(2)}),
      dist::SegmentShape::of({2}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 1) {
      // unowned: "some element of section is not owned by p".
      EXPECT_FALSE(p.iown(A, Section{Triplet(4, 5)}));
      // transitional: owned + uncompleted receive.
      p.recv(A, Section{Triplet(5, 6)}, A, Section{Triplet(1, 2)});
      EXPECT_TRUE(p.iown(A, Section{Triplet(5, 6)}));       // still owned
      EXPECT_FALSE(p.accessible(A, Section{Triplet(5, 6)}));
      // The snapshot view mirrors it per segment.
      bool sawTransitional = false;
      for (const auto& seg : p.table().segments(A))
        if (seg.status == SegState::Transitional) sawTransitional = true;
      EXPECT_TRUE(sawTransitional);
      p.barrier();
      EXPECT_TRUE(p.await(A, Section{Triplet(5, 6)}));  // accessible again
    } else {
      p.barrier();
      p.send(A, Section{Triplet(1, 2)}, std::vector<int>{1});
    }
  });
}

}  // namespace
}  // namespace xdp::rt
