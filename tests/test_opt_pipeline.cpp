// The section 2.2 optimization pipeline, end to end:
//
//   sequential  --lower-->  owner-computes  --RTE-->  aligned transfers gone
//               --vectorize-->  per-peer section messages
//               --CRE-->  localized loop bounds, guards gone
//               --bind-->  direct routing, no matchmaker
//
// Every stage must compute the same result as the sequential semantics,
// while the measured communication/guard work falls exactly the way the
// paper claims.
#include <gtest/gtest.h>

#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"

namespace xdp::opt {
namespace {

using apps::VecAddConfig;
using interp::Interpreter;
using sec::Index;
using sec::Section;
using sec::Triplet;

struct RunResult {
  std::vector<double> values;
  net::NetStats net;
  interp::InterpStats stats;
  double makespan = 0.0;
};

RunResult runVecAdd(const il::Program& prog, const VecAddConfig& cfg,
                    bool debugChecks = true) {
  rt::RuntimeOptions opts;
  opts.debugChecks = debugChecks;
  Interpreter in(prog, opts);
  apps::registerFillKernel(in, cfg.seed);
  in.run();
  RunResult r;
  r.values = apps::gatherF64(in.runtime(), prog.findSymbol("A"),
                             Section{Triplet(1, cfg.n)});
  r.net = in.runtime().fabric().totalStats();
  r.stats = in.totalStats();
  r.makespan = in.runtime().fabric().makespan();
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
  EXPECT_EQ(in.runtime().fabric().pendingReceiveCount(), 0u);
  return r;
}

void expectCorrect(const RunResult& r, const VecAddConfig& cfg) {
  ASSERT_EQ(r.values.size(), static_cast<std::size_t>(cfg.n));
  for (Index i = 1; i <= cfg.n; ++i)
    ASSERT_DOUBLE_EQ(r.values[static_cast<std::size_t>(i - 1)],
                     apps::vecAddExpected(cfg, i))
        << "element " << i;
}

TEST(OptPipeline, LoweredMisalignedIsCorrectAndMovesEveryElement) {
  auto cfg = apps::vecAddMisaligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  auto r = runVecAdd(lowered, cfg);
  expectCorrect(r, cfg);
  // Owner-computes without further optimization: one message per element.
  EXPECT_EQ(r.net.messagesSent, 16u);
  EXPECT_EQ(r.net.rendezvousSends, 16u);  // destinations still unspecified
}

TEST(OptPipeline, LoweredPrintsThePaperListing) {
  auto cfg = apps::vecAddMisaligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  std::string text = il::printProgram(lowered);
  EXPECT_NE(text.find("iown(B[i]) : {"), std::string::npos);
  EXPECT_NE(text.find("B[i] ->"), std::string::npos);
  EXPECT_NE(text.find("T0[mypid] <- B[i]"), std::string::npos);
  EXPECT_NE(text.find("await(T0[mypid])"), std::string::npos);
}

TEST(OptPipeline, AlignedSelfTransfersStillWork) {
  // Without RTE, aligned arrays self-send: correct, just wasteful.
  auto cfg = apps::vecAddAligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  auto r = runVecAdd(lowered, cfg);
  expectCorrect(r, cfg);
  EXPECT_EQ(r.net.messagesSent, 16u);
}

TEST(OptPipeline, RteEliminatesAlignedTransfers) {
  auto cfg = apps::vecAddAligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  il::Program rte = redundantTransferElimination(lowered);
  auto r = runVecAdd(rte, cfg);
  expectCorrect(r, cfg);
  EXPECT_EQ(r.net.messagesSent, 0u);  // everything was local
  // The temporary disappears from the program text.
  std::string text = il::printStmt(rte, rte.body);
  EXPECT_EQ(text.find("T0"), std::string::npos);
  EXPECT_EQ(text.find("<-"), std::string::npos);
}

TEST(OptPipeline, RteLeavesMisalignedTransfersAlone) {
  auto cfg = apps::vecAddMisaligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  il::Program rte = redundantTransferElimination(lowered);
  auto r = runVecAdd(rte, cfg);
  expectCorrect(r, cfg);
  EXPECT_EQ(r.net.messagesSent, 16u);  // still every element
}

TEST(OptPipeline, VectorizationCollapsesMessages) {
  auto cfg = apps::vecAddMisaligned(32, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  il::Program vec = messageVectorization(lowered);
  auto r = runVecAdd(vec, cfg);
  expectCorrect(r, cfg);
  // At most one message per ordered peer pair instead of one per element.
  EXPECT_LE(r.net.messagesSent, 12u);  // 4*3
  EXPECT_GT(r.net.messagesSent, 0u);
  // Exactly the misaligned elements move (24 of 32: BLOCK owner == CYCLIC
  // owner for 2 elements per 8-block); the naive form also self-sends the
  // aligned 8, so vectorization strictly reduces bytes too.
  EXPECT_EQ(r.net.bytesSent, 24u * sizeof(double));
  auto lowerRun = runVecAdd(lowered, cfg);
  EXPECT_EQ(lowerRun.net.bytesSent, 32u * sizeof(double));
}

TEST(OptPipeline, VectorizationAlignedSendsNothing) {
  auto cfg = apps::vecAddAligned(32, 4);
  il::Program vec =
      messageVectorization(lowerOwnerComputes(apps::buildVecAdd(cfg)));
  auto r = runVecAdd(vec, cfg);
  expectCorrect(r, cfg);
  EXPECT_EQ(r.net.messagesSent, 0u);  // all intersections are local
}

TEST(OptPipeline, CreRemovesGuardWork) {
  auto cfg = apps::vecAddMisaligned(32, 4);
  il::Program vec =
      messageVectorization(lowerOwnerComputes(apps::buildVecAdd(cfg)));
  il::Program cre = computeRuleElimination(vec);
  auto before = runVecAdd(vec, cfg);
  auto r = runVecAdd(cre, cfg);
  expectCorrect(r, cfg);
  // The compute loop ran only owned iterations: 32 total across procs
  // instead of 32 per proc.
  EXPECT_LT(r.stats.loopIterations, before.stats.loopIterations);
  EXPECT_LT(r.stats.rulesEvaluated, before.stats.rulesEvaluated);
  // The compute-loop guard is gone from the program text.
  std::string text = il::printStmt(cre, cre.body);
  EXPECT_EQ(text.find("iown"), std::string::npos);
}

TEST(OptPipeline, CreWorksOnCyclicLoops) {
  // CYCLIC lhs: localized bounds use stride P.
  VecAddConfig cfg = apps::vecAddAligned(32, 4);
  Section g{Triplet(1, 32)};
  cfg.distA = dist::Distribution(g, {dist::DimSpec::cyclic(4)});
  cfg.distB = dist::Distribution(g, {dist::DimSpec::cyclic(4)});
  il::Program rte =
      redundantTransferElimination(lowerOwnerComputes(apps::buildVecAdd(cfg)));
  il::Program cre = computeRuleElimination(rte);
  auto r = runVecAdd(cre, cfg);
  expectCorrect(r, cfg);
  // 32 iterations total (8 per processor), no guards.
  EXPECT_EQ(r.stats.loopIterations, 32u);
  EXPECT_EQ(r.stats.rulesEvaluated, 0u);
  std::string text = il::printStmt(cre, cre.body);
  EXPECT_NE(text.find(", 4"), std::string::npos);  // stride-P loop
}

TEST(OptPipeline, BindingRemovesRendezvousTraffic) {
  auto cfg = apps::vecAddMisaligned(32, 4);
  il::Program vec =
      messageVectorization(lowerOwnerComputes(apps::buildVecAdd(cfg)));
  il::Program bound = commBinding(vec);
  auto unbound = runVecAdd(vec, cfg);
  auto r = runVecAdd(bound, cfg);
  expectCorrect(r, cfg);
  EXPECT_GT(unbound.net.rendezvousSends, 0u);
  EXPECT_EQ(r.net.rendezvousSends, 0u);
  EXPECT_EQ(r.net.directSends, r.net.messagesSent);
  // Modeled time improves: no matchmaker hop.
  EXPECT_LT(r.makespan, unbound.makespan);
}

TEST(OptPipeline, BindingOnLoweredFormUsesRecvGuardOwner) {
  // Without vectorization, CommBinding derives the destination from the
  // linked receive's iown(A[i]) guard.
  auto cfg = apps::vecAddMisaligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(cfg));
  il::Program bound = commBinding(lowered);
  auto r = runVecAdd(bound, cfg);
  expectCorrect(r, cfg);
  EXPECT_EQ(r.net.rendezvousSends, 0u);
  std::string text = il::printStmt(bound, bound.body);
  EXPECT_NE(text.find("owner(A[i])"), std::string::npos);
}

TEST(OptPipeline, FullStandardPipeline) {
  auto cfg = apps::vecAddMisaligned(64, 4);
  PassManager pm;
  for (const auto& p : standardPipeline()) pm.add(p);
  std::string trace;
  il::Program optimized = pm.run(apps::buildVecAdd(cfg), &trace);
  auto r = runVecAdd(optimized, cfg);
  expectCorrect(r, cfg);
  EXPECT_LE(r.net.messagesSent, 12u);
  EXPECT_EQ(r.net.rendezvousSends, 0u);
  EXPECT_NE(trace.find("=== after message-vectorize ==="),
            std::string::npos);
}

TEST(OptPipeline, PipelineMonotonicallyImprovesModeledTime) {
  // The headline shape claim of E1: each §2.2 optimization stage improves
  // (or preserves) modeled time, with a strict win from naive to final.
  auto cfg = apps::vecAddMisaligned(64, 4);
  il::Program p0 = lowerOwnerComputes(apps::buildVecAdd(cfg));
  il::Program p1 = redundantTransferElimination(p0);
  il::Program p2 = messageVectorization(p1);
  il::Program p3 = computeRuleElimination(p2);
  il::Program p4 = commBinding(p3);
  double t0 = runVecAdd(p0, cfg).makespan;
  double t2 = runVecAdd(p2, cfg).makespan;
  double t4 = runVecAdd(p4, cfg).makespan;
  EXPECT_LT(t2, t0);  // vectorization beats per-element messages
  EXPECT_LT(t4, t2);  // binding beats rendezvous
}

TEST(OptPipeline, MixedDistributionsSweep) {
  // Property sweep: every stage of the pipeline computes the sequential
  // result for every distribution combination.
  Section g{Triplet(1, 24)};
  std::vector<dist::Distribution> dists = {
      dist::Distribution(g, {dist::DimSpec::block(4)}),
      dist::Distribution(g, {dist::DimSpec::cyclic(4)}),
      dist::Distribution(g, {dist::DimSpec::block(2)}),
  };
  for (const auto& da : dists) {
    for (const auto& db : dists) {
      VecAddConfig cfg;
      cfg.n = 24;
      cfg.nprocs = 4;
      cfg.distA = da;
      cfg.distB = db;
      il::Program prog = apps::buildVecAdd(cfg);
      il::Program lowered = lowerOwnerComputes(prog);
      expectCorrect(runVecAdd(lowered, cfg), cfg);
      il::Program opt = commBinding(computeRuleElimination(
          messageVectorization(redundantTransferElimination(lowered))));
      expectCorrect(runVecAdd(opt, cfg), cfg);
    }
  }
}

}  // namespace
}  // namespace xdp::opt
