// Segmentation tests (paper Fig. 3): tiling local partitions into segments
// of a compiler-chosen shape.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "xdp/dist/segmentation.hpp"

namespace xdp::dist {
namespace {

Section box2(Index r, Index c) {
  return Section{Triplet(1, r), Triplet(1, c)};
}

/// Segments must disjointly cover exactly the local partition.
void checkSegmentsCoverPartition(const Distribution& d, int pid,
                                 const SegmentShape& shape) {
  auto segs = segmentsOf(d, pid, shape);
  RegionList part = d.localPart(pid);
  Index total = 0;
  for (const auto& s : segs) {
    total += s.count();
    EXPECT_TRUE(part.covers(s)) << "segment outside partition: " << s;
  }
  EXPECT_EQ(total, part.count()) << "segments overlap or miss elements";
}

TEST(Segmentation, ChopTriplet) {
  auto chunks = chopTriplet(Triplet(1, 10), 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], Triplet(1, 4));
  EXPECT_EQ(chunks[1], Triplet(5, 8));
  EXPECT_EQ(chunks[2], Triplet(9, 10));  // ragged tail
}

TEST(Segmentation, ChopStridedTriplet) {
  // CYCLIC-owned elements {2,5,8,11,14} chopped in pairs.
  auto chunks = chopTriplet(Triplet(2, 14, 3), 2);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], Triplet(2, 5, 3));
  EXPECT_EQ(chunks[1], Triplet(8, 11, 3));
  EXPECT_EQ(chunks[2], Triplet(14, 14, 3));
}

TEST(Segmentation, ZeroMeansWholeDim) {
  auto chunks = chopTriplet(Triplet(1, 100), 0);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], Triplet(1, 100));
}

TEST(Segmentation, Fig3aBlockBlock2x1Segments) {
  // Fig 3(a): 4x8 (BLOCK,BLOCK) on 2x2, P3 owns [3:4,5:8]; 2x1 segments
  // give 4 segments of 2 elements each.
  Distribution d(box2(4, 8), {DimSpec::block(2), DimSpec::block(2)});
  auto segs = segmentsOf(d, 3, SegmentShape::of({2, 1}));
  ASSERT_EQ(segs.size(), 4u);
  for (const auto& s : segs) EXPECT_EQ(s.count(), 2);
  // First segment in Fortran order is the top-left of the partition.
  EXPECT_EQ(segs[0], (Section{Triplet(3, 4), Triplet(5)}));
  checkSegmentsCoverPartition(d, 3, SegmentShape::of({2, 1}));
}

TEST(Segmentation, Fig3aBlockBlock1x2Segments) {
  Distribution d(box2(4, 8), {DimSpec::block(2), DimSpec::block(2)});
  auto segs = segmentsOf(d, 3, SegmentShape::of({1, 2}));
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0], (Section{Triplet(3), Triplet(5, 6)}));
  checkSegmentsCoverPartition(d, 3, SegmentShape::of({1, 2}));
}

TEST(Segmentation, Fig3bBlockCyclicSegments) {
  // Fig 3(b): (BLOCK, CYCLIC): P3 owns rows 3:4, cols {2,4,6,8}. A 2x2
  // segment covers 2 rows x 2 owned (strided) columns.
  Distribution d(box2(4, 8), {DimSpec::block(2), DimSpec::cyclic(2)});
  auto segs = segmentsOf(d, 3, SegmentShape::of({2, 2}));
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Section{Triplet(3, 4), Triplet(2, 4, 2)}));
  EXPECT_EQ(segs[1], (Section{Triplet(3, 4), Triplet(6, 8, 2)}));
  checkSegmentsCoverPartition(d, 3, SegmentShape::of({2, 2}));
}

TEST(Segmentation, FftExampleSegments) {
  // Section 4: (*,*,BLOCK) on 4 procs, segments of 4 consecutive elements
  // = one column line A[1:4,n,p].
  Distribution d(
      Section{Triplet(1, 4), Triplet(1, 4), Triplet(1, 4)},
      {DimSpec::collapsed(), DimSpec::collapsed(), DimSpec::block(4)});
  auto segs = segmentsOf(d, 2, SegmentShape::of({4, 1, 1}));
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0],
            (Section{Triplet(1, 4), Triplet(1), Triplet(3)}));
  checkSegmentsCoverPartition(d, 2, SegmentShape::of({4, 1, 1}));
}

class SegmentationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SegmentationSweep, CoverageForAllShapesAndPids) {
  auto [s0, s1] = GetParam();
  std::vector<Distribution> dists = {
      Distribution(box2(7, 9), {DimSpec::block(2), DimSpec::block(3)}),
      Distribution(box2(7, 9), {DimSpec::cyclic(2), DimSpec::block(3)}),
      Distribution(box2(7, 9), {DimSpec::blockCyclic(2, 2), DimSpec::cyclic(3)}),
      Distribution(box2(7, 9), {DimSpec::collapsed(), DimSpec::block(4)}),
  };
  for (const auto& d : dists)
    for (int p = 0; p < d.nprocs(); ++p)
      checkSegmentsCoverPartition(
          d, p, SegmentShape::of({static_cast<Index>(s0),
                                  static_cast<Index>(s1)}));
}

INSTANTIATE_TEST_SUITE_P(Shapes, SegmentationSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(0, 1, 2, 5)));

}  // namespace
}  // namespace xdp::dist
