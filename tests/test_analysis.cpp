// Mutation tests for the static XDP verifier (xdp::analysis): a known-good
// two-processor transfer program is seeded with one defect per diagnostic
// class, and the verifier must (a) flag exactly that class, (b) anchor the
// diagnostic to the defective source line, and (c) keep the unmutated
// program spotless.
#include <gtest/gtest.h>

#include <string>

#include "xdp/analysis/verifier.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/il/printer.hpp"

namespace xdp::analysis {
namespace {

VerifyResult verifySrc(const std::string& src) {
  il::Program prog = il::parseProgram(src);
  return verifyProgram(prog);
}

const Diagnostic* findKind(const VerifyResult& r, DiagKind k) {
  for (const Diagnostic& d : r.diagnostics)
    if (d.kind == k) return &d;
  return nullptr;
}

std::string dump(const std::string& src, const VerifyResult& r) {
  il::Program prog = il::parseProgram(src);
  return formatDiagnostics(prog, r);
}

// Processor 0 sends its left half of A; processor 1 stages it into the
// tail of B and waits for it. Statically clean, fully decidable.
const char* kBase = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : { A[1:4] -> {1} }
(mypid == 1) : {
  B[5:8] <- A[1:4]
  await(B[5:8])
}
)";

TEST(AnalysisMutations, BaseProgramIsCleanAndExhaustive) {
  VerifyResult r = verifySrc(kBase);
  EXPECT_TRUE(r.clean()) << dump(kBase, r);
  EXPECT_TRUE(r.exhaustive);
  EXPECT_GT(r.stmtsAnalyzed, 0u);
}

TEST(AnalysisMutations, DroppedReceiveIsUnmatchedSend) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : { A[1:4] -> {1} }
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::UnmatchedSend);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->pid, 0);
  EXPECT_EQ(d->loc.line, 5);
}

TEST(AnalysisMutations, DroppedSendIsOrphanReceive) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 1) : {
  B[5:8] <- A[1:4]
  await(B[5:8])
}
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::OrphanRecv);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->pid, 1);
  EXPECT_EQ(d->loc.line, 7);
}

TEST(AnalysisMutations, DuplicatedSendIsUnmatchedSend) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : {
  A[1:4] -> {1}
  A[1:4] -> {1}
}
(mypid == 1) : {
  B[5:8] <- A[1:4]
  await(B[5:8])
}
)";
  VerifyResult r = verifySrc(src);
  ASSERT_NE(findKind(r, DiagKind::UnmatchedSend), nullptr) << dump(src, r);
  EXPECT_EQ(findKind(r, DiagKind::OrphanRecv), nullptr) << dump(src, r);
}

TEST(AnalysisMutations, AwaitBeforeReceiveInitiationWarns) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : { A[1:4] -> {1} }
(mypid == 1) : {
  await(B[5:8])
  B[5:8] <- A[1:4]
}
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::AwaitMismatch);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(d->loc.line, 8);
  EXPECT_NE(d->message.find("precedes"), std::string::npos) << d->message;
}

TEST(AnalysisMutations, SendOfUnownedSection) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : { A[5:8] -> {1} }
(mypid == 1) : {
  B[5:8] <- A[5:8]
  await(B[5:8])
}
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::SendUnowned);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->severity, Severity::Error);
  EXPECT_EQ(d->pid, 0);
  EXPECT_EQ(d->loc.line, 6);
}

TEST(AnalysisMutations, OwnershipSentTwiceIsDoubleOwnership) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : {
  A[1:4] => {1}
  A[1:4] => {1}
}
(mypid == 1) : { A[1:4] <= }
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::DoubleOwnership);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->loc.line, 7);
  EXPECT_NE(d->message.find("twice"), std::string::npos) << d->message;
  // The refused second send never leaves, so the 1:1 pairing is intact.
  EXPECT_EQ(findKind(r, DiagKind::UnmatchedSend), nullptr) << dump(src, r);
}

TEST(AnalysisMutations, OwnershipReceiveWhileStillOwned) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 1) : { A[5:8] <= }
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::DoubleOwnership);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->pid, 1);
  EXPECT_NE(d->message.find("already owns"), std::string::npos) << d->message;
}

TEST(AnalysisMutations, ReceiveIntoUnownedSection) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : { A[1:4] -> {1} }
(mypid == 1) : { B[1:4] <- A[1:4] }
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::NotAccessible);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->pid, 1);
  EXPECT_EQ(d->loc.line, 7);
  EXPECT_NE(d->message.find("receive into"), std::string::npos) << d->message;
}

TEST(AnalysisMutations, UseAfterOwnershipTransfer) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : { A[1:4] => {1} }
(mypid == 1) : { A[1:4] <= }
(mypid == 0) : { A[2] = 1.0 }
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::NotAccessible);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->pid, 0);
  EXPECT_EQ(d->loc.line, 7);
  EXPECT_NE(d->message.find("transferred away"), std::string::npos)
      << d->message;
}

TEST(AnalysisMutations, ReadOfTransitionalSection) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : { A[1:4] -> {1} }
(mypid == 1) : {
  B[5:8] <- A[1:4]
  x = B[6] + 1.0
  await(B[5:8])
}
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::NotAccessible);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->loc.line, 9);
  EXPECT_NE(d->message.find("transitional"), std::string::npos) << d->message;
}

TEST(AnalysisMutations, SizeMismatchedReceive) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)
array B f64 [1:8] (BLOCK)

fill(A[1:8], B[1:8])
(mypid == 0) : { A[1:4] -> {1} }
(mypid == 1) : {
  B[5:6] <- A[1:4]
  await(B[5:6])
}
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::TransferMismatch);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->loc.line, 8);
  EXPECT_NE(d->message.find("differ in size"), std::string::npos)
      << d->message;
}

TEST(AnalysisMutations, AwaitOfUnownedSectionWarns) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : { await(A[5:8]) }
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::AwaitMismatch);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_NE(d->message.find("does not own"), std::string::npos) << d->message;
}

TEST(AnalysisMutations, SendDestinationOutOfRange) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : { A[1:4] -> {5} }
)";
  VerifyResult r = verifySrc(src);
  const Diagnostic* d = findKind(r, DiagKind::TransferMismatch);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_NE(d->message.find("outside"), std::string::npos) << d->message;
}

TEST(AnalysisMutations, FormattedDiagnosticCarriesFileAndLine) {
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
(mypid == 0) : { A[1:4] -> {1} }
)";
  il::Program prog = il::parseProgram(src);
  VerifyResult r = verifyProgram(prog);
  ASSERT_FALSE(r.clean());
  std::string line = formatDiagnostic(prog, r.diagnostics[0], "prog.xdp");
  EXPECT_NE(line.find("prog.xdp:5:"), std::string::npos) << line;
  EXPECT_NE(line.find("error:"), std::string::npos) << line;
  EXPECT_NE(line.find("[unmatched-send"), std::string::npos) << line;
}

TEST(AnalysisMutations, UnknownGuardDowngradesToWarningAndClearsExhaustive) {
  // The guard depends on an array value the analysis does not track, so
  // the violation inside it is possible-but-not-proven: Warning, and the
  // conditional send's matching group goes silent instead of guessing.
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
x = 0.0
(mypid == 1) : { x = A[5] }
(x > 0.5) : { A[1:4] -> {0} }
)";
  VerifyResult r = verifySrc(src);
  EXPECT_FALSE(r.exhaustive);
  const Diagnostic* d = findKind(r, DiagKind::SendUnowned);
  ASSERT_NE(d, nullptr) << dump(src, r);
  EXPECT_EQ(d->severity, Severity::Warning);
  EXPECT_EQ(findKind(r, DiagKind::UnmatchedSend), nullptr) << dump(src, r);
}

TEST(AnalysisMutations, EmptySectionTransfersAreNoOps) {
  // Mirrors the runtime exactly: empty sends/receives/awaits do nothing,
  // so per-pid boundary guards that evaluate to empty sections are fine.
  const char* src = R"(procs 2
array A f64 [1:8] (BLOCK)

fill(A[1:8])
do i = 1, 0
  A[1:4] -> {1}
enddo
await(A[5:4])
)";
  VerifyResult r = verifySrc(src);
  EXPECT_TRUE(r.clean()) << dump(src, r);
}

TEST(AnalysisMutations, MatchingRespectsBoundDestinations) {
  // Two sends of the same message name to *different* bound destinations
  // and two receives: destination constraints make the pairing unique and
  // satisfiable, so no diagnostic.
  const char* src = R"(procs 3
array W f64 [0:0] (BLOCK:1)
array M f64 [0:2] (BLOCK)

fill(W[0:0], M[0:2])
(mypid == 0) : {
  W[0] -> {1}
  W[0] -> {2}
}
(mypid > 0) : {
  M[mypid] <- W[0]
  await(M[mypid])
}
)";
  VerifyResult r = verifySrc(src);
  EXPECT_TRUE(r.clean()) << dump(src, r);
}

TEST(AnalysisMutations, MatchingDetectsUnsatisfiableDestinations) {
  // Both sends are bound to processor 1, but only one receive exists
  // there; the second send can never be delivered.
  const char* src = R"(procs 3
array W f64 [0:0] (BLOCK:1)
array M f64 [0:2] (BLOCK)

fill(W[0:0], M[0:2])
(mypid == 0) : {
  W[0] -> {1}
  W[0] -> {1}
}
(mypid > 0) : {
  M[mypid] <- W[0]
  await(M[mypid])
}
)";
  VerifyResult r = verifySrc(src);
  EXPECT_NE(findKind(r, DiagKind::UnmatchedSend), nullptr) << dump(src, r);
  EXPECT_NE(findKind(r, DiagKind::OrphanRecv), nullptr) << dump(src, r);
}

}  // namespace
}  // namespace xdp::analysis
