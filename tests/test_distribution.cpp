// HPF distribution tests, including the paper's concrete examples:
//   Fig. 2: A[1:4,1:8] (*,BLOCK), B[1:16,1:16] (BLOCK,CYCLIC) on 2x2
//   Fig. 3: 4x8 array as (BLOCK,BLOCK) and (BLOCK,CYCLIC) on 2x2
//   Sec. 4: A[1:4,1:4,1:4] (*,*,BLOCK) on 4 procs
#include <gtest/gtest.h>

#include "xdp/dist/distribution.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::dist {
namespace {

Section box2(Index r, Index c) {
  return Section{Triplet(1, r), Triplet(1, c)};
}

/// Every element must be owned by exactly one processor, and localPart must
/// agree with ownerOf. This is the fundamental partition invariant.
void checkPartition(const Distribution& d) {
  // ownerOf-in-range + localPart consistency.
  std::vector<RegionList> parts;
  for (int p = 0; p < d.nprocs(); ++p) parts.push_back(d.localPart(p));
  Index total = 0;
  for (int p = 0; p < d.nprocs(); ++p) total += parts[static_cast<unsigned>(p)].count();
  ASSERT_EQ(total, d.global().count()) << d.str();
  d.global().forEach([&](const Point& pt) {
    int owner = d.ownerOf(pt);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, d.nprocs());
    for (int p = 0; p < d.nprocs(); ++p) {
      EXPECT_EQ(parts[static_cast<unsigned>(p)].contains(pt), p == owner)
          << d.str() << " at " << pt << " owner=" << owner << " p=" << p;
    }
  });
}

TEST(Distribution, BlockOneDim) {
  Distribution d(Section{Triplet(1, 16)}, {DimSpec::block(4)});
  EXPECT_EQ(d.nprocs(), 4);
  EXPECT_EQ(d.ownerOf(Point{1}), 0);
  EXPECT_EQ(d.ownerOf(Point{4}), 0);
  EXPECT_EQ(d.ownerOf(Point{5}), 1);
  EXPECT_EQ(d.ownerOf(Point{16}), 3);
  auto part = d.localPart(2);
  ASSERT_EQ(part.sections().size(), 1u);
  EXPECT_EQ(part.sections()[0], (Section{Triplet(9, 12)}));
  checkPartition(d);
}

TEST(Distribution, BlockUnevenLastProcShorter) {
  // N=10 over 4: blocks of 3 -> 3,3,3,1.
  Distribution d(Section{Triplet(1, 10)}, {DimSpec::block(4)});
  EXPECT_EQ(d.localPart(0).count(), 3);
  EXPECT_EQ(d.localPart(3).count(), 1);
  checkPartition(d);
}

TEST(Distribution, BlockMoreProcsThanElements) {
  Distribution d(Section{Triplet(1, 3)}, {DimSpec::block(8)});
  checkPartition(d);
  // Some processors own nothing.
  int empty = 0;
  for (int p = 0; p < 8; ++p)
    if (d.localPart(p).empty()) ++empty;
  EXPECT_GT(empty, 0);
}

TEST(Distribution, CyclicOneDim) {
  Distribution d(Section{Triplet(1, 10)}, {DimSpec::cyclic(3)});
  EXPECT_EQ(d.ownerOf(Point{1}), 0);
  EXPECT_EQ(d.ownerOf(Point{2}), 1);
  EXPECT_EQ(d.ownerOf(Point{3}), 2);
  EXPECT_EQ(d.ownerOf(Point{4}), 0);
  auto part = d.localPart(1);
  ASSERT_EQ(part.sections().size(), 1u);
  EXPECT_EQ(part.sections()[0], (Section{Triplet(2, 8, 3)}));
  checkPartition(d);
}

TEST(Distribution, BlockCyclicOneDim) {
  Distribution d(Section{Triplet(1, 16)}, {DimSpec::blockCyclic(2, 3)});
  // blocks of 3: p0 gets 1-3, 7-9, 13-15; p1 gets 4-6, 10-12, 16.
  EXPECT_EQ(d.ownerOf(Point{3}), 0);
  EXPECT_EQ(d.ownerOf(Point{4}), 1);
  EXPECT_EQ(d.ownerOf(Point{7}), 0);
  EXPECT_EQ(d.ownerOf(Point{16}), 1);
  EXPECT_EQ(d.localPart(0).count(), 9);
  EXPECT_EQ(d.localPart(1).count(), 7);
  checkPartition(d);
}

TEST(Distribution, Fig2StarBlock) {
  // A[1:4,1:8] (*, BLOCK) over 4 processors in the distributed dimension.
  Distribution d(box2(4, 8), {DimSpec::collapsed(), DimSpec::block(4)});
  EXPECT_EQ(d.nprocs(), 4);
  EXPECT_EQ(d.str(), "(*, BLOCK)");
  // Processor p owns all rows of columns 2p+1..2p+2.
  for (int p = 0; p < 4; ++p) {
    auto part = d.localPart(p);
    EXPECT_TRUE(part.covers(
        Section{Triplet(1, 4), Triplet(2 * p + 1, 2 * p + 2)}));
    EXPECT_EQ(part.count(), 8);
  }
  checkPartition(d);
}

TEST(Distribution, Fig2BlockCyclic2D) {
  // B[1:16,1:16] (BLOCK, CYCLIC) over a 2x2 grid.
  Distribution d(box2(16, 16), {DimSpec::block(2), DimSpec::cyclic(2)});
  EXPECT_EQ(d.nprocs(), 4);
  EXPECT_EQ(d.str(), "(BLOCK, CYCLIC)");
  // pid = rowCoord + 2*colCoord (first distributed dim fastest).
  EXPECT_EQ(d.ownerOf(Point{1, 1}), 0);
  EXPECT_EQ(d.ownerOf(Point{9, 1}), 1);
  EXPECT_EQ(d.ownerOf(Point{1, 2}), 2);
  EXPECT_EQ(d.ownerOf(Point{9, 2}), 3);
  checkPartition(d);
}

TEST(Distribution, Fig3BlockBlock) {
  // 4x8 (BLOCK, BLOCK) on 2x2: P3 (coords (1,1)) owns rows 3:4, cols 5:8.
  Distribution d(box2(4, 8), {DimSpec::block(2), DimSpec::block(2)});
  auto part = d.localPart(3);
  ASSERT_EQ(part.sections().size(), 1u);
  EXPECT_EQ(part.sections()[0], (Section{Triplet(3, 4), Triplet(5, 8)}));
  checkPartition(d);
}

TEST(Distribution, Fig3BlockCyclic) {
  // 4x8 (BLOCK, CYCLIC) on 2x2: P3 owns rows 3:4, every other col from 2.
  Distribution d(box2(4, 8), {DimSpec::block(2), DimSpec::cyclic(2)});
  auto part = d.localPart(3);
  ASSERT_EQ(part.sections().size(), 1u);
  EXPECT_EQ(part.sections()[0],
            (Section{Triplet(3, 4), Triplet(2, 8, 2)}));
  checkPartition(d);
}

TEST(Distribution, FftStarStarBlock) {
  // Section 4: A[1:4,1:4,1:4] (*,*,BLOCK) over 4 procs — proc i owns
  // A[1:4,1:4,i+1].
  Distribution d(
      Section{Triplet(1, 4), Triplet(1, 4), Triplet(1, 4)},
      {DimSpec::collapsed(), DimSpec::collapsed(), DimSpec::block(4)});
  for (int p = 0; p < 4; ++p) {
    auto part = d.localPart(p);
    EXPECT_TRUE(part.covers(
        Section{Triplet(1, 4), Triplet(1, 4), Triplet(p + 1)}));
    EXPECT_EQ(part.count(), 16);
  }
  checkPartition(d);
}

TEST(Distribution, ScalarRankZero) {
  Distribution d(Section{}, {});
  EXPECT_EQ(d.nprocs(), 1);
  EXPECT_EQ(d.ownerOf(Point{}), 0);
  EXPECT_EQ(d.localPart(0).count(), 1);
}

TEST(Distribution, EqualityIsStructural) {
  Distribution a(box2(4, 8), {DimSpec::block(2), DimSpec::cyclic(2)});
  Distribution b(box2(4, 8), {DimSpec::block(2), DimSpec::cyclic(2)});
  Distribution c(box2(4, 8), {DimSpec::cyclic(2), DimSpec::block(2)});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

struct DistCase {
  DimSpec d0, d1;
  Index n0, n1;
};

class DistributionPartition
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistributionPartition, PartitionInvariantHolds) {
  auto [kind0, kind1, size] = GetParam();
  auto mk = [&](int kind, int procs) {
    switch (kind) {
      case 0:
        return DimSpec::collapsed();
      case 1:
        return DimSpec::block(procs);
      case 2:
        return DimSpec::cyclic(procs);
      default:
        return DimSpec::blockCyclic(procs, 3);
    }
  };
  // Keep at least one distributed dimension so nprocs > 1 is exercised.
  if (kind0 == 0 && kind1 == 0) GTEST_SKIP();
  Distribution d(box2(size, size + 3), {mk(kind0, 2), mk(kind1, 3)});
  checkPartition(d);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DistributionPartition,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(5, 8, 13)));

}  // namespace
}  // namespace xdp::dist
