// Deeper algebraic property sweeps for the section machinery: identities
// that every downstream component assumes, exercised across ranks and
// adversarial strides.
#include <gtest/gtest.h>

#include <set>

#include "xdp/dist/segmentation.hpp"
#include "xdp/sections/region_list.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::sec {
namespace {

Triplet randTrip(Rng& rng, Index lo, Index hi, Index maxStride) {
  return Triplet(rng.range(lo, hi), rng.range(lo, hi + 10),
                 rng.range(1, maxStride));
}

Section randSection(Rng& rng, int rank, Index maxStride = 4) {
  std::vector<Triplet> dims;
  for (int d = 0; d < rank; ++d) dims.push_back(randTrip(rng, -4, 8, maxStride));
  return Section(dims);
}

class SectionAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SectionAlgebra, IntersectionIsCommutativeAndIdempotent) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    const int rank = static_cast<int>(rng.range(1, 4));
    Section a = randSection(rng, rank);
    Section b = randSection(rng, rank);
    Section ab = Section::intersect(a, b);
    Section ba = Section::intersect(b, a);
    EXPECT_TRUE(ab == ba);
    EXPECT_TRUE(Section::intersect(a, a) == a || a.empty());
    // i ⊆ a and i ⊆ b.
    EXPECT_TRUE(a.containsAll(ab));
    EXPECT_TRUE(b.containsAll(ab));
  }
}

TEST_P(SectionAlgebra, IntersectionIsAssociative) {
  Rng rng(GetParam() ^ 0x11);
  for (int iter = 0; iter < 50; ++iter) {
    const int rank = static_cast<int>(rng.range(1, 3));
    Section a = randSection(rng, rank);
    Section b = randSection(rng, rank);
    Section c = randSection(rng, rank);
    Section l = Section::intersect(Section::intersect(a, b), c);
    Section r = Section::intersect(a, Section::intersect(b, c));
    EXPECT_TRUE(l == r) << a << " " << b << " " << c;
  }
}

TEST_P(SectionAlgebra, SubtractPartitionsTheOriginal) {
  // a == (a \ b) ⊎ (a ∩ b): counts add up and all pieces are inside a.
  Rng rng(GetParam() ^ 0x22);
  for (int iter = 0; iter < 50; ++iter) {
    const int rank = static_cast<int>(rng.range(1, 4));
    Section a = randSection(rng, rank, 3);
    Section b = randSection(rng, rank, 3);
    auto rest = Section::subtract(a, b);
    Index total = Section::intersect(a, b).count();
    for (const Section& piece : rest) {
      EXPECT_TRUE(a.containsAll(piece));
      EXPECT_TRUE(Section::intersect(piece, b).empty());
      total += piece.count();
    }
    EXPECT_EQ(total, a.count());
    // Pieces are pairwise disjoint.
    for (std::size_t x = 0; x < rest.size(); ++x)
      for (std::size_t y = x + 1; y < rest.size(); ++y)
        EXPECT_TRUE(Section::intersect(rest[x], rest[y]).empty());
  }
}

TEST_P(SectionAlgebra, FortranPosIsABijection) {
  Rng rng(GetParam() ^ 0x33);
  for (int iter = 0; iter < 20; ++iter) {
    const int rank = static_cast<int>(rng.range(1, 4));
    Section s = randSection(rng, rank);
    if (s.count() > 4000) continue;
    std::set<Index> seen;
    s.forEach([&](const Point& p) {
      Index pos = s.fortranPos(p);
      EXPECT_GE(pos, 0);
      EXPECT_LT(pos, s.count());
      EXPECT_TRUE(seen.insert(pos).second) << "duplicate position";
    });
    EXPECT_EQ(static_cast<Index>(seen.size()), s.count());
  }
}

TEST_P(SectionAlgebra, CoverageAgreesWithMembership) {
  Rng rng(GetParam() ^ 0x44);
  for (int iter = 0; iter < 30; ++iter) {
    RegionList rl;
    for (int k = 0; k < 4; ++k) rl.add(randSection(rng, 2, 3));
    Section q = randSection(rng, 2, 3);
    bool expect = true;
    if (q.empty()) {
      expect = true;
    } else {
      q.forEach([&](const Point& p) { expect = expect && rl.contains(p); });
    }
    EXPECT_EQ(rl.covers(q), expect) << q;
  }
}

TEST_P(SectionAlgebra, SegmentationIsAPartitionUnderRandomShapes) {
  Rng rng(GetParam() ^ 0x55);
  using namespace xdp::dist;
  for (int iter = 0; iter < 10; ++iter) {
    Index n0 = rng.range(4, 12), n1 = rng.range(4, 12);
    Section g{Triplet(1, n0), Triplet(1, n1)};
    auto spec = [&](int which, int procs) {
      switch (which) {
        case 0: return DimSpec::collapsed();
        case 1: return DimSpec::block(procs);
        case 2: return DimSpec::cyclic(procs);
        default:
          return DimSpec::blockCyclic(procs,
                                      static_cast<Index>(rng.range(1, 3)));
      }
    };
    int k0 = static_cast<int>(rng.below(4)), k1 = static_cast<int>(rng.below(4));
    if (k0 == 0 && k1 == 0) k1 = 1;
    Distribution d(g, {spec(k0, 2), spec(k1, 2)});
    SegmentShape shape = SegmentShape::of(
        {static_cast<Index>(rng.range(0, 4)),
         static_cast<Index>(rng.range(0, 4))});
    for (int pid = 0; pid < d.nprocs(); ++pid) {
      auto segs = segmentsOf(d, pid, shape);
      RegionList part = d.localPart(pid);
      Index total = 0;
      for (const auto& s : segs) {
        EXPECT_TRUE(part.covers(s));
        total += s.count();
      }
      EXPECT_EQ(total, part.count());
      for (std::size_t x = 0; x < segs.size(); ++x)
        for (std::size_t y = x + 1; y < segs.size(); ++y)
          EXPECT_TRUE(Section::intersect(segs[x], segs[y]).empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SectionAlgebra,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// --- near-INT64_MAX strides --------------------------------------------
// Regression for the lcm overflow: intersect() used to compute the
// combined stride a.stride/g * b.stride in Index width, so strides in the
// 1e18 range produced a negative/garbage stride instead of the right
// (often single-element or empty) result.

TEST(SectionLargeStride, LcmOverflowsIndexButResultIsExact) {
  const Index e18 = 1000000000000000000;  // 1e18
  // a = {0, 3e18, 6e18, 9e18}, b = {0, 4e18, 8e18}; lcm = 12e18 > 2^63-1,
  // so the only common element in range is 0.
  Triplet a(0, 9 * e18, 3 * e18);
  Triplet b(0, 8 * e18, 4 * e18);
  EXPECT_EQ(Triplet::intersect(a, b), Triplet(0, 0));
  EXPECT_EQ(Triplet::intersect(b, a), Triplet(0, 0));
}

TEST(SectionLargeStride, LargeLcmWithOffsetOrigins) {
  const Index e18 = 1000000000000000000;
  // Same huge lcm, origins shifted so the common element is not 0:
  // a = 5 + {0, 3e18, 6e18, 9e18}, b = 5 + {0, 4e18, 8e18}.
  Triplet a(5, 5 + 9 * e18, 3 * e18);
  Triplet b(5, 5 + 8 * e18, 4 * e18);
  EXPECT_EQ(Triplet::intersect(a, b), Triplet(5, 5));
}

TEST(SectionLargeStride, DisjointResiduesWithHugeStrides) {
  const Index e18 = 1000000000000000000;
  // gcd(3e18, 4e18) = 1e18 does not divide the origin gap of 1, so the
  // progressions never meet; the old code could fabricate an element.
  Triplet a(0, 9 * e18, 3 * e18);
  Triplet b(1, 1 + 8 * e18, 4 * e18);
  EXPECT_TRUE(Triplet::intersect(a, b).empty());
}

TEST(SectionLargeStride, HugeEqualStridesStayExact) {
  const Index big = 4000000000000000000;  // 4e18
  Triplet a(-big, big, big);  // {-4e18, 0, 4e18}
  Triplet b(0, big, big);     // {0, 4e18}
  EXPECT_EQ(Triplet::intersect(a, b), Triplet(0, big, big));
}

TEST(SectionLargeStride, NegativeOriginHugeLcm) {
  const Index e18 = 1000000000000000000;
  // a = {-4e18, 0, 4e18}, b = {-4e18, 2e18}; lcm(4e18, 6e18) = 12e18
  // overflows Index, so the only common element is -4e18.
  Triplet a(-4 * e18, 4 * e18, 4 * e18);
  Triplet b(-4 * e18, 2 * e18, 6 * e18);
  EXPECT_EQ(Triplet::intersect(a, b), Triplet(-4 * e18, -4 * e18));
}

TEST(SectionLargeStride, BruteForceAgreementWithBigStrideBase) {
  // Property sweep where both strides are huge multiples of a common
  // base: enumerate both sides (element counts stay tiny) and compare
  // against the closed-form intersection.
  Rng rng(777);
  const Index base = 250000000000000000;  // 2.5e17
  for (int iter = 0; iter < 200; ++iter) {
    const Index sa = base * rng.range(1, 8);
    const Index sb = base * rng.range(1, 8);
    const Index la = base * rng.range(-3, 3);
    const Index lb = base * rng.range(-3, 3);
    Triplet a(la, la + sa * rng.range(0, 3), sa);
    Triplet b(lb, lb + sb * rng.range(0, 3), sb);
    std::set<Index> expect;
    for (Index i = 0; i < a.count(); ++i)
      for (Index j = 0; j < b.count(); ++j)
        if (a.at(i) == b.at(j)) expect.insert(a.at(i));
    Triplet got = Triplet::intersect(a, b);
    std::set<Index> actual;
    for (Index k = 0; k < got.count(); ++k) actual.insert(got.at(k));
    EXPECT_EQ(actual, expect) << a << " ∩ " << b;
  }
}

}  // namespace
}  // namespace xdp::sec
