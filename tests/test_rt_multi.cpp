// Aggregated multi-section transfers — the extension the paper proposes in
// section 3.2 ("aggregating a set of separate data transfers into a single
// message can reduce overhead ... allowing the left-hand side of XDP send
// and receive statements to be a set of sections").
#include <gtest/gtest.h>

#include "xdp/rt/proc.hpp"
#include "xdp/support/check.hpp"

namespace xdp::rt {
namespace {

using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

RuntimeOptions debug() {
  RuntimeOptions o;
  o.debugChecks = true;
  return o;
}

TEST(RtMulti, ThreeSectionsOneMessage) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 32)};
  const int A = rt.declareArray<double>("A", g,
                                        Distribution(g, {DimSpec::block(1)}));
  Section g2{Triplet(1, 64)};
  const int IN = rt.declareArray<double>(
      "IN", g2, Distribution(g2, {DimSpec::block(2)}));
  // Three disjoint strided pieces of A, one message.
  std::vector<Section> pieces{Section{Triplet(1, 4)},
                              Section{Triplet(10, 18, 2)},
                              Section{Triplet(30, 32)}};
  std::vector<Section> dsts{Section{Triplet(33, 36)},
                            Section{Triplet(40, 44)},
                            Section{Triplet(50, 52)}};
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      for (Index i = 1; i <= 32; ++i)
        p.set<double>(A, Point{i}, static_cast<double>(i));
      p.sendMulti(A, pieces, std::vector<int>{1});
    } else {
      p.recvMulti(IN, dsts, A, pieces);
      for (const Section& d : dsts) EXPECT_TRUE(p.await(IN, d));
      EXPECT_EQ(p.read<double>(IN, dsts[0]),
                (std::vector<double>{1, 2, 3, 4}));
      EXPECT_EQ(p.read<double>(IN, dsts[1]),
                (std::vector<double>{10, 12, 14, 16, 18}));
      EXPECT_EQ(p.read<double>(IN, dsts[2]),
                (std::vector<double>{30, 31, 32}));
    }
  });
  auto st = rt.fabric().totalStats();
  EXPECT_EQ(st.messagesSent, 1u);  // one alpha for three sections
  EXPECT_EQ(st.bytesSent, 12u * sizeof(double));
}

TEST(RtMulti, NamesIncludeTheWholeSet) {
  // A receive naming a different set must not match.
  Runtime rt(2);
  Section g{Triplet(1, 8)};
  const int A = rt.declareArray<double>("A", g,
                                        Distribution(g, {DimSpec::block(1)}));
  Section g2{Triplet(1, 16)};
  const int IN = rt.declareArray<double>(
      "IN", g2, Distribution(g2, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      p.sendMulti(A, {Section{Triplet(1, 2)}, Section{Triplet(5, 6)}},
                  std::vector<int>{1});
    } else {
      // Wrong set: different second section.
      p.recvMulti(IN, {Section{Triplet(9, 10)}, Section{Triplet(11, 12)}},
                  A, {Section{Triplet(1, 2)}, Section{Triplet(7, 8)}});
      EXPECT_FALSE(p.accessible(IN, Section{Triplet(9, 10)}));
    }
  });
  EXPECT_EQ(rt.fabric().undeliveredCount(), 1u);
  EXPECT_EQ(rt.fabric().pendingReceiveCount(), 1u);
}

TEST(RtMulti, AggregatedOwnershipTransfer) {
  // A whole redistribution's worth of planes in ONE ownership message.
  Runtime rt(2, debug());
  Section g{Triplet(1, 16)};
  const int A = rt.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(1)}),
      dist::SegmentShape::of({4}));
  std::vector<Section> planes{Section{Triplet(1, 4)}, Section{Triplet(9, 12)}};
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      for (Index i = 1; i <= 16; ++i)
        p.set<double>(A, Point{i}, i * 3.0);
      p.sendOwnershipMulti(A, planes, /*withValue=*/true,
                           std::vector<int>{1});
      EXPECT_FALSE(p.iown(A, planes[0]));
      EXPECT_FALSE(p.iown(A, planes[1]));
      EXPECT_TRUE(p.iown(A, Section{Triplet(5, 8)}));
    } else {
      p.recvOwnershipMulti(A, planes, /*withValue=*/true);
      EXPECT_TRUE(p.await(A, planes[0]));
      EXPECT_TRUE(p.await(A, planes[1]));
      EXPECT_EQ(p.read<double>(A, planes[0]),
                (std::vector<double>{3, 6, 9, 12}));
      EXPECT_EQ(p.read<double>(A, planes[1]),
                (std::vector<double>{27, 30, 33, 36}));
    }
  });
  auto st = rt.fabric().totalStats();
  EXPECT_EQ(st.messagesSent, 1u);
  EXPECT_EQ(st.ownershipTransfers, 1u);
}

TEST(RtMulti, OwnershipOnlyAggregateCarriesNoBytes) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 8)};
  const int A = rt.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(1)}),
      dist::SegmentShape::of({2}));
  std::vector<Section> parts{Section{Triplet(1, 2)}, Section{Triplet(5, 6)}};
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      p.sendOwnershipMulti(A, parts, /*withValue=*/false,
                           std::vector<int>{1});
    } else {
      p.recvOwnershipMulti(A, parts, /*withValue=*/false);
      EXPECT_TRUE(p.await(A, parts[0]));
      EXPECT_TRUE(p.await(A, parts[1]));
    }
  });
  EXPECT_EQ(rt.fabric().totalStats().bytesSent, 0u);
}

TEST(RtMulti, AggregationCostsOneAlpha) {
  // Modeled cost: k separate sends pay k alphas; one aggregate pays one.
  const int kSections = 8;
  auto runIt = [&](bool aggregate) {
    Runtime rt(2);
    Section g{Triplet(1, 64)};
    const int A = rt.declareArray<double>(
        "A", g, Distribution(g, {DimSpec::block(1)}));
    Section g2{Triplet(1, 128)};
    const int IN = rt.declareArray<double>(
        "IN", g2, Distribution(g2, {DimSpec::block(2)}));
    std::vector<Section> pieces, dsts;
    for (int k = 0; k < kSections; ++k) {
      pieces.emplace_back(Section{Triplet(8 * k + 1, 8 * k + 8)});
      dsts.emplace_back(Section{Triplet(64 + 8 * k + 1, 64 + 8 * k + 8)});
    }
    rt.run([&](Proc& p) {
      if (p.mypid() == 0) {
        if (aggregate) {
          p.sendMulti(A, pieces, std::vector<int>{1});
        } else {
          for (const Section& s : pieces) p.send(A, s, std::vector<int>{1});
        }
      } else {
        if (aggregate) {
          p.recvMulti(IN, dsts, A, pieces);
          for (const Section& d : dsts) p.await(IN, d);
        } else {
          for (std::size_t k = 0; k < pieces.size(); ++k) {
            p.recv(IN, dsts[k], A, pieces[k]);
            p.await(IN, dsts[k]);
          }
        }
      }
    });
    return rt.fabric().clock(0);  // sender-side modeled cost
  };
  const double aggregated = runIt(true);
  const double separate = runIt(false);
  // k-1 alphas saved (alpha = 1e-5 by default).
  EXPECT_NEAR(separate - aggregated, (kSections - 1) * 1e-5, 1e-9);
}

}  // namespace
}  // namespace xdp::rt
