// Property/stress tests of the runtime's ownership machinery: under long
// random sequences of ownership transfers, the global partition invariant
// must hold — every element owned by exactly one processor, with its
// latest value intact — and the storage pools must not leak.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "xdp/rt/proc.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::rt {
namespace {

using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

RuntimeOptions debug() {
  RuntimeOptions o;
  o.debugChecks = true;
  return o;
}

/// Deterministic plan of random section transfers, executed SPMD-style:
/// step k moves section S_k from its current owner to a chosen target.
struct TransferPlan {
  struct Step {
    Index lb, ub;
    int to;
  };
  std::vector<Step> steps;
  std::vector<int> ownerAt;  // model: owner of each element, updated below
};

TEST(RtStress, RandomSectionMigrationsKeepPartitionInvariant) {
  constexpr Index kN = 64;
  constexpr int kProcs = 4;
  constexpr int kSteps = 60;
  for (std::uint64_t seed : {7ull, 99ull, 12345ull}) {
    Rng rng(seed);
    // Model world: element -> owner; initial BLOCK.
    std::vector<int> owner(kN);
    for (Index i = 0; i < kN; ++i)
      owner[static_cast<std::size_t>(i)] =
          static_cast<int>(i / (kN / kProcs));
    // Build a plan of steps where each step's section has a single owner
    // (so a single processor executes the send).
    struct Step {
      Index lb, ub;
      int from, to;
    };
    std::vector<Step> plan;
    for (int s = 0; s < kSteps; ++s) {
      // Pick a random element, extend to the maximal same-owner run, then
      // take a random sub-run of it.
      Index pivot = rng.range(0, kN - 1);
      int from = owner[static_cast<std::size_t>(pivot)];
      Index lo = pivot, hi = pivot;
      while (lo > 0 && owner[static_cast<std::size_t>(lo - 1)] == from) --lo;
      while (hi + 1 < kN && owner[static_cast<std::size_t>(hi + 1)] == from)
        ++hi;
      Index a = rng.range(lo, hi), b = rng.range(lo, hi);
      if (a > b) std::swap(a, b);
      int to = static_cast<int>(rng.below(kProcs));
      if (to == from) to = (to + 1) % kProcs;
      plan.push_back({a + 1, b + 1, from, to});  // 1-based sections
      for (Index i = a; i <= b; ++i)
        owner[static_cast<std::size_t>(i)] = to;
    }

    Runtime rt(kProcs, debug());
    Section g{Triplet(1, kN)};
    const int A = rt.declareArray<double>(
        "A", g, Distribution(g, {DimSpec::block(kProcs)}),
        dist::SegmentShape::of({4}));
    rt.run([&](Proc& p) {
      // Owners stamp their initial elements with the element index.
      for (Index i = 1; i <= kN; ++i) {
        Section si{Triplet(i)};
        if (p.iown(A, si))
          p.set<double>(A, Point{i}, static_cast<double>(i));
      }
      p.barrier();
      for (const Step& st : plan) {
        Section s{Triplet(st.lb, st.ub)};
        if (p.mypid() == st.from) {
          // The section may have been fragmented by earlier inbound
          // transfers; await yields accessibility before shipping.
          p.sendOwnership(A, s, true, std::vector<int>{st.to});
        } else if (p.mypid() == st.to) {
          p.recvOwnership(A, s, true);
          EXPECT_TRUE(p.await(A, s));
        }
        p.barrier();  // steps are globally ordered
      }
    });

    // Partition invariant + value preservation against the model.
    for (Index i = 1; i <= kN; ++i) {
      Section si{Triplet(i)};
      int owners = 0;
      for (int q = 0; q < kProcs; ++q) {
        if (rt.table(q).iown(A, si)) {
          ++owners;
          std::array<std::byte, sizeof(double)> buf{};
          rt.table(q).readElems(A, si, buf.data());
          double v;
          std::memcpy(&v, buf.data(), sizeof v);
          EXPECT_DOUBLE_EQ(v, static_cast<double>(i)) << "element " << i;
          EXPECT_EQ(q, owner[static_cast<std::size_t>(i - 1)]);
        }
      }
      EXPECT_EQ(owners, 1) << "element " << i << " seed " << seed;
    }
    // No storage leaked: total owned elements == kN.
    std::size_t total = 0;
    for (int q = 0; q < kProcs; ++q)
      total += rt.table(q).totalOwnedElems();
    EXPECT_EQ(total, static_cast<std::size_t>(kN));
  }
}

TEST(RtStress, ManyConcurrentDataTransfers) {
  // All-to-all data traffic with unique names, repeated; nothing may be
  // lost, duplicated or corrupted.
  constexpr int kProcs = 8;
  constexpr int kRounds = 20;
  Runtime rt(kProcs, debug());
  Section g{Triplet(0, kProcs * kProcs * kRounds - 1)};
  const int A = rt.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::cyclic(kProcs)}));
  Section gi{Triplet(0, kProcs * kProcs * kRounds - 1)};
  const int IN = rt.declareArray<double>(
      "IN", gi, Distribution(gi, {DimSpec::cyclic(kProcs)}));
  rt.run([&](Proc& p) {
    const int me = p.mypid();
    // CYCLIC over [0:...] means slot % P owns the slot, so every slot's
    // low digit is its owner. A-slot for (round r, sender s, receiver d)
    // is r*P*P + d*P + s (owned by the sender s); the matching IN-slot is
    // r*P*P + s*P + d (owned by the receiver d).
    for (int r = 0; r < kRounds; ++r) {
      for (int dst = 0; dst < kProcs; ++dst) {
        Index slot = static_cast<Index>(r * kProcs * kProcs + dst * kProcs +
                                        me);
        ASSERT_TRUE(p.iown(A, Section{Triplet(slot)}));
        p.set<double>(A, Point{slot}, static_cast<double>(slot) + 0.5);
      }
      p.barrier();
      for (int dst = 0; dst < kProcs; ++dst) {
        Index slot = static_cast<Index>(r * kProcs * kProcs + dst * kProcs +
                                        me);
        p.send(A, Section{Triplet(slot)}, std::vector<int>{dst});
      }
      for (int src = 0; src < kProcs; ++src) {
        Index slot = static_cast<Index>(r * kProcs * kProcs + me * kProcs +
                                        src);
        Index inSlot = static_cast<Index>(r * kProcs * kProcs +
                                          src * kProcs + me);
        p.recv(IN, Section{Triplet(inSlot)}, A, Section{Triplet(slot)});
        EXPECT_TRUE(p.await(IN, Section{Triplet(inSlot)}));
        EXPECT_DOUBLE_EQ(p.get<double>(IN, Point{inSlot}),
                         static_cast<double>(slot) + 0.5);
      }
      p.barrier();
    }
  });
  EXPECT_EQ(rt.fabric().undeliveredCount(), 0u);
  EXPECT_EQ(rt.fabric().pendingReceiveCount(), 0u);
  auto st = rt.fabric().totalStats();
  EXPECT_EQ(st.messagesSent,
            static_cast<std::uint64_t>(kProcs) * kProcs * kRounds);
}

TEST(RtStress, FragmentThenReassemble) {
  // Fragment one processor's block into single elements spread over all
  // processors, then gather everything onto the last processor; values
  // and the partition must survive both phases.
  constexpr Index kN = 32;
  constexpr int kProcs = 4;
  Runtime rt(kProcs, debug());
  Section g{Triplet(1, kN)};
  const int A = rt.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(1)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      for (Index i = 1; i <= kN; ++i)
        p.set<double>(A, Point{i}, i * 2.0);
      for (Index i = 1; i <= kN; ++i)
        p.sendOwnership(A, Section{Triplet(i)}, true,
                        std::vector<int>{static_cast<int>(i) % kProcs});
    }
    for (Index i = 1; i <= kN; ++i)
      if (static_cast<int>(i) % kProcs == p.mypid() && p.mypid() != 0)
        p.recvOwnership(A, Section{Triplet(i)}, true);
    // p0's self-targets: it just shipped them; receive them back.
    if (p.mypid() == 0)
      for (Index i = kProcs; i <= kN; i += kProcs)
        p.recvOwnership(A, Section{Triplet(i)}, true);
    // Wait for my fragments, then forward them all to the last processor.
    const int last = kProcs - 1;
    for (Index i = 1; i <= kN; ++i) {
      if (static_cast<int>(i) % kProcs != p.mypid()) continue;
      Section si{Triplet(i)};
      EXPECT_TRUE(p.await(A, si));
      if (p.mypid() != last)
        p.sendOwnership(A, si, true, std::vector<int>{last});
    }
    if (p.mypid() == last) {
      for (Index i = 1; i <= kN; ++i)
        if (static_cast<int>(i) % kProcs != last)
          p.recvOwnership(A, Section{Triplet(i)}, true);
      EXPECT_TRUE(p.await(A, g));
      for (Index i = 1; i <= kN; ++i)
        EXPECT_DOUBLE_EQ(p.get<double>(A, Point{i}), i * 2.0);
      EXPECT_TRUE(p.iown(A, g));
    }
  });
  std::size_t total = 0;
  for (int q = 0; q < kProcs; ++q) total += rt.table(q).totalOwnedElems();
  EXPECT_EQ(total, static_cast<std::size_t>(kN));
}

}  // namespace
}  // namespace xdp::rt
