// Structural tests for the flat IL arena (xdp/il/flat.hpp): flatten()
// invariants (post-order, DAG sharing, interning) and verify()'s ability
// to catch corrupted programs.
#include <gtest/gtest.h>

#include "xdp/il/flat.hpp"

namespace xdp::il::flat {
namespace {

using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Section;
using sec::Triplet;

il::Program sampleProgram() {
  il::Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 8)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::block(2)}), {}});
  il::ExprPtr i = il::scalar("i");
  prog.body = il::block({
      il::scalarAssign("n", il::intConst(8)),
      il::forLoop("i", il::intConst(1), il::scalar("n"),
                  il::block({il::guarded(
                      il::iown(0, il::secPoint({i})),
                      il::block({il::elemAssign(
                          0, il::secPoint({i}),
                          il::add(il::scalar("i"), il::intConst(1)))}))})),
      il::sendData(0, il::secPoint({il::intConst(1)}),
                   il::DestSpec::toPids({il::intConst(0)})),
  });
  return prog;
}

TEST(FlatIl, FlattenedProgramVerifiesClean) {
  FlatProgram fp = flatten(sampleProgram());
  EXPECT_TRUE(verify(fp).empty());
  EXPECT_GT(fp.exprs.size(), 0u);
  EXPECT_GT(fp.stmts.size(), 0u);
  EXPECT_GT(fp.secs.size(), 0u);
  EXPECT_TRUE(fp.body.valid());
  // The body block is a parent of everything, so with post-order layout it
  // must be the last statement row.
  EXPECT_EQ(fp.body.id, static_cast<std::uint32_t>(fp.stmts.size() - 1));
}

TEST(FlatIl, ChildrenPrecedeParents) {
  FlatProgram fp = flatten(sampleProgram());
  for (std::uint32_t k = 0; k < fp.exprs.size(); ++k) {
    const Expr& e = fp.exprs[k];
    if (e.lhs.valid()) {
      EXPECT_LT(e.lhs.id, k);
    }
    if (e.rhs.valid()) {
      EXPECT_LT(e.rhs.id, k);
    }
  }
  for (std::uint32_t k = 0; k < fp.stmts.size(); ++k) {
    const Stmt& s = fp.stmts[k];
    if (s.body.valid()) {
      EXPECT_LT(s.body.id, k);
    }
    for (std::uint32_t c = 0; c < s.kidsLen; ++c)
      EXPECT_LT(fp.stmtKids[s.kidsOff + c].id, k);
  }
}

TEST(FlatIl, SharedSubtreeFlattensOnce) {
  // The same ExprPtr used twice must produce one row referenced twice;
  // two structurally identical but distinct trees produce two rows.
  auto mk = [](il::ExprPtr a, il::ExprPtr b) {
    il::Program prog;
    prog.nprocs = 1;
    Section g{Triplet(1, 4)};
    prog.addArray({"A", rt::ElemType::F64, g,
                   Distribution(g, {DimSpec::block(1)}), {}});
    prog.body = il::block({il::scalarAssign("x", std::move(a)),
                           il::scalarAssign("y", std::move(b))});
    return flatten(prog);
  };
  il::ExprPtr shared = il::add(il::intConst(2), il::intConst(3));
  FlatProgram onceFp = mk(shared, shared);
  FlatProgram twiceFp = mk(il::add(il::intConst(2), il::intConst(3)),
                           il::add(il::intConst(2), il::intConst(3)));
  EXPECT_EQ(twiceFp.exprs.size(), onceFp.exprs.size() + 3);
  // Both assignments reference the identical row.
  StmtRef body = onceFp.body;
  const Stmt& blk = onceFp[body];
  ASSERT_EQ(blk.kidsLen, 2u);
  const Stmt& sx = onceFp[onceFp.stmtKids[blk.kidsOff]];
  const Stmt& sy = onceFp[onceFp.stmtKids[blk.kidsOff + 1]];
  EXPECT_EQ(sx.value.id, sy.value.id);
}

TEST(FlatIl, ScalarNamesInternedDense) {
  FlatProgram fp = flatten(sampleProgram());
  // "n" assigned once and read once, "i" bound once and read three times:
  // each name appears exactly once in the intern table.
  ASSERT_EQ(fp.scalarNames.size(), 2u);
  EXPECT_EQ(fp.numScalars(), 2);
  EXPECT_NE(fp.scalarNames[0], fp.scalarNames[1]);
  for (const std::string& n : fp.scalarNames)
    EXPECT_TRUE(n == "n" || n == "i");
}

TEST(FlatIl, VerifyCatchesForwardExprRef) {
  FlatProgram fp = flatten(sampleProgram());
  // Find a Bin row and point its lhs at itself (violates post-order).
  bool corrupted = false;
  for (std::uint32_t k = 0; k < fp.exprs.size() && !corrupted; ++k) {
    if (fp.exprs[k].kind == ExprKind::Bin) {
      fp.exprs[k].lhs = ExprRef{k};
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(verify(fp).empty());
}

TEST(FlatIl, VerifyCatchesSpanOverrun) {
  FlatProgram fp = flatten(sampleProgram());
  fp.stmts[fp.body.id].kidsLen =
      static_cast<std::uint32_t>(fp.stmtKids.size()) + 7;
  EXPECT_FALSE(verify(fp).empty());
}

TEST(FlatIl, VerifyCatchesBadScalarId) {
  FlatProgram fp = flatten(sampleProgram());
  bool corrupted = false;
  for (auto& s : fp.stmts) {
    if (s.kind == StmtKind::ScalarAssign) {
      s.scalarId = fp.numScalars() + 3;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(verify(fp).empty());
}

}  // namespace
}  // namespace xdp::il::flat
