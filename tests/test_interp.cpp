// Interpreter semantics: expression evaluation, compute rules (including
// the unowned-reference => false rule of paper 2.4), loops, transfers,
// section expressions and kernels.
#include <gtest/gtest.h>

#include "xdp/apps/programs.hpp"
#include "xdp/interp/interpreter.hpp"

namespace xdp::interp {
namespace {

using dist::DimSpec;
using dist::Distribution;
using il::ExprPtr;
using il::SectionExprPtr;
using sec::Triplet;

rt::RuntimeOptions debug() {
  rt::RuntimeOptions o;
  o.debugChecks = true;
  return o;
}

il::Program oneArrayProgram(Index n, int nprocs, il::StmtPtr body) {
  il::Program prog;
  prog.nprocs = nprocs;
  Section g{Triplet(1, n)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::block(nprocs)}), {}});
  prog.body = std::move(body);
  return prog;
}

TEST(Interp, GuardedOwnerWritesOnly) {
  // Each owner writes A[i] = i via the iown guard; verify via gather.
  ExprPtr i = il::scalar("i");
  SectionExprPtr ai = il::secPoint({i});
  auto prog = oneArrayProgram(
      8, 2,
      il::forLoop("i", il::intConst(1), il::intConst(8),
                  il::block({il::guarded(
                      il::iown(0, ai),
                      il::block({il::elemAssign(0, ai, i)}))})));
  Interpreter in(prog, debug());
  in.run();
  auto vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, 8)});
  for (int k = 0; k < 8; ++k)
    EXPECT_DOUBLE_EQ(vals[static_cast<unsigned>(k)], k + 1.0);
  // Guards: 8 iterations on 2 procs = 16 evaluations, 8 true.
  auto st = in.totalStats();
  EXPECT_EQ(st.rulesEvaluated, 16u);
  EXPECT_EQ(st.rulesTrue, 8u);
  EXPECT_EQ(st.loopIterations, 16u);
}

TEST(Interp, UnownedValueRefMakesRuleFalse) {
  // Rule "A[1] > -1" references a value only p0 owns; on p1 the rule is
  // false rather than an error (paper 2.4).
  SectionExprPtr a1 = il::secPoint({il::intConst(1)});
  auto body = il::block({il::guarded(
      il::bin(il::BinOp::Gt, il::elem(0, a1), il::realConst(-1.0)),
      il::block({il::elemAssign(0, a1, il::realConst(5.0))}))});
  auto prog = oneArrayProgram(8, 2, body);
  Interpreter in(prog, debug());
  in.run();  // would throw on p1 if the rule evaluated the unowned ref
  auto st = in.totalStats();
  EXPECT_EQ(st.rulesEvaluated, 2u);
  EXPECT_EQ(st.rulesTrue, 1u);  // only the owner
  auto vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, 8)});
  EXPECT_DOUBLE_EQ(vals[0], 5.0);
}

TEST(Interp, IntrinsicsInExpressions) {
  // mylb/myub drive loop bounds: each proc writes only its own block.
  SectionExprPtr all = il::secLit(
      {il::TripletExpr{il::intConst(1), il::intConst(8), {}}});
  ExprPtr i = il::scalar("i");
  auto body = il::block({il::forLoop(
      "i", il::mylb(0, all, 0), il::myub(0, all, 0),
      il::block({il::elemAssign(0, il::secPoint({i}), il::mypid())}))});
  auto prog = oneArrayProgram(8, 4, body);
  Interpreter in(prog, debug());
  in.run();
  auto vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, 8)});
  for (int k = 0; k < 8; ++k)
    EXPECT_DOUBLE_EQ(vals[static_cast<unsigned>(k)], k / 2);
}

TEST(Interp, ShortCircuitProtectsAgainstDivZero) {
  SectionExprPtr a1 = il::secPoint({il::intConst(1)});
  // (mypid != 0) && (1/mypid >= 0): short-circuit avoids div-by-zero on p0.
  ExprPtr rule = il::land(
      il::bin(il::BinOp::Ne, il::mypid(), il::intConst(0)),
      il::bin(il::BinOp::Ge,
              il::bin(il::BinOp::Div, il::intConst(1), il::mypid()),
              il::intConst(0)));
  auto prog =
      oneArrayProgram(4, 2, il::block({il::guarded(rule, il::block({}))}));
  Interpreter in(prog, debug());
  EXPECT_NO_THROW(in.run());
}

TEST(Interp, SectionExprLocalAndOwnerPart) {
  // LocalCopy via part expressions: B[mypart] = A[mypart] elementwise.
  il::Program prog;
  prog.nprocs = 4;
  Section g{Triplet(1, 16)};
  Distribution d(g, {DimSpec::block(4)});
  prog.addArray({"A", rt::ElemType::F64, g, d, {}});
  prog.addArray({"B", rt::ElemType::F64, g, d, {}});
  prog.body = il::block({
      il::kernel("fill", {{0, il::secLocalPart(0)}}),
      il::localCopy(1, il::secLocalPart(1), 0, il::secLocalPart(0)),
  });
  Interpreter in(prog, debug());
  apps::registerFillKernel(in, 99);
  in.run();
  auto a = apps::gatherF64(in.runtime(), 0, g);
  auto b = apps::gatherF64(in.runtime(), 1, g);
  EXPECT_EQ(a, b);
  for (double v : a) EXPECT_NE(v, 0.0);
}

TEST(Interp, IntersectSectionExpr) {
  // Owner q's part ∩ [5:12] — verified against the distribution directly.
  il::Program prog;
  prog.nprocs = 4;
  Section g{Triplet(1, 16)};
  Distribution d(g, {DimSpec::block(4)});
  prog.addArray({"A", rt::ElemType::F64, g, d, {}});
  // Every proc computes nonempty(ownerPart(q) ∩ [5:12]) for q = mypid and
  // records it in A[mypid+1] (owners of those cells are staggered, so use
  // a guarded write).
  ExprPtr cond = il::secNonEmpty(
      0, il::secIntersect(il::secOwnerPart(0, il::mypid()),
                          il::secRange1(il::intConst(5), il::intConst(12))));
  SectionExprPtr mine = il::secPoint(
      {il::add(il::mul(il::mypid(), il::intConst(4)), il::intConst(1))});
  prog.body = il::block({il::guarded(
      cond, il::block({il::elemAssign(0, mine, il::realConst(1.0))}))});
  Interpreter in(prog, debug());
  in.run();
  auto vals = apps::gatherF64(in.runtime(), 0, g);
  // Parts: p0=1:4 (∩5:12 empty), p1=5:8, p2=9:12, p3=13:16 (empty).
  EXPECT_DOUBLE_EQ(vals[0], 0.0);
  EXPECT_DOUBLE_EQ(vals[4], 1.0);
  EXPECT_DOUBLE_EQ(vals[8], 1.0);
  EXPECT_DOUBLE_EQ(vals[12], 0.0);
}

TEST(Interp, TransfersThroughIl) {
  // p0 sends A[1] to p1's B[2] slot through IL statements.
  il::Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 2)};
  Distribution d(g, {DimSpec::block(2)});
  prog.addArray({"A", rt::ElemType::F64, g, d, {}});
  prog.addArray({"B", rt::ElemType::F64, g, d, {}});
  SectionExprPtr a1 = il::secPoint({il::intConst(1)});
  SectionExprPtr b2 = il::secPoint({il::intConst(2)});
  prog.body = il::block({
      il::guarded(il::iown(0, a1),
                  il::block({il::elemAssign(0, a1, il::realConst(3.5)),
                             il::sendData(0, a1)})),
      il::guarded(il::iown(1, b2),
                  il::block({il::recvData(1, b2, 0, a1),
                             il::awaitStmt(1, b2)})),
  });
  Interpreter in(prog, debug());
  in.run();
  auto b = apps::gatherF64(in.runtime(), 1, g);
  EXPECT_DOUBLE_EQ(b[1], 3.5);
}

TEST(Interp, OwnershipTransferThroughIl) {
  il::Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 8)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::block(2)}), {}});
  SectionExprPtr left =
      il::secLit({il::TripletExpr{il::intConst(1), il::intConst(4), {}}});
  prog.body = il::block({
      il::guarded(il::bin(il::BinOp::Eq, il::mypid(), il::intConst(0)),
                  il::block({il::sendOwn(0, left, true)})),
      il::guarded(il::bin(il::BinOp::Eq, il::mypid(), il::intConst(1)),
                  il::block({il::recvOwn(0, left, true),
                             il::awaitStmt(0, left)})),
  });
  Interpreter in(prog, debug());
  in.run();
  // p1 now owns everything.
  EXPECT_TRUE(in.runtime().table(1).iown(0, g));
  EXPECT_FALSE(
      in.runtime().table(0).iown(0, Section{Triplet(1, 4)}));
}

TEST(Interp, ComputeCostAdvancesClock) {
  auto prog = oneArrayProgram(
      4, 2, il::block({il::computeCost(il::realConst(2.5))}));
  Interpreter in(prog, debug());
  in.run();
  EXPECT_DOUBLE_EQ(in.runtime().fabric().clock(0), 2.5);
  EXPECT_DOUBLE_EQ(in.runtime().fabric().makespan(), 2.5);
}

TEST(Interp, UndefinedScalarIsAnError) {
  auto prog = oneArrayProgram(
      4, 1,
      il::block({il::scalarAssign("x", il::scalar("nope"))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::Error);
}

TEST(Interp, UnregisteredKernelIsAnError) {
  auto prog = oneArrayProgram(
      4, 1, il::block({il::kernel("mystery", {})}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::Error);
}

}  // namespace
}  // namespace xdp::interp
