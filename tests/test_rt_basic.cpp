// Runtime semantics tests: every intrinsic and data-transfer statement of
// the paper's Figure 1, on the simulated SPMD machine.
#include <gtest/gtest.h>

#include <numeric>

#include "xdp/rt/dump.hpp"
#include "xdp/rt/proc.hpp"

namespace xdp::rt {
namespace {

using dist::DimSpec;
using sec::Triplet;

RuntimeOptions debug() {
  RuntimeOptions o;
  o.debugChecks = true;
  return o;
}

TEST(RtBasic, InitialOwnershipFollowsDistribution) {
  Runtime rt(4, debug());
  int A = rt.declareArray<double>(
      "A", Section{Triplet(1, 16)},
      Distribution(Section{Triplet(1, 16)}, {DimSpec::block(4)}));
  rt.run([&](Proc& p) {
    // Each processor exclusively owns its block and nothing else.
    Section mine{Triplet(4 * p.mypid() + 1, 4 * p.mypid() + 4)};
    EXPECT_TRUE(p.iown(A, mine));
    EXPECT_TRUE(p.accessible(A, mine));
    Section all{Triplet(1, 16)};
    EXPECT_FALSE(p.iown(A, all));
    Section other{Triplet(((p.mypid() + 1) % 4) * 4 + 1,
                          ((p.mypid() + 1) % 4) * 4 + 4)};
    EXPECT_FALSE(p.iown(A, other));
  });
}

TEST(RtBasic, MylbMyubAndSentinels) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>(
      "A", Section{Triplet(1, 4), Triplet(1, 8)},
      Distribution(Section{Triplet(1, 4), Triplet(1, 8)},
                   {DimSpec::collapsed(), DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    Section all{Triplet(1, 4), Triplet(1, 8)};
    if (p.mypid() == 0) {
      EXPECT_EQ(p.mylb(A, all, 1), 1);
      EXPECT_EQ(p.myub(A, all, 1), 4);
    } else {
      EXPECT_EQ(p.mylb(A, all, 1), 5);
      EXPECT_EQ(p.myub(A, all, 1), 8);
    }
    EXPECT_EQ(p.mylb(A, all, 0), 1);
    EXPECT_EQ(p.myub(A, all, 0), 4);
    // Query restricted to a section this processor does not own at all.
    Section theirs{Triplet(1, 4),
                   Triplet(p.mypid() == 0 ? 5 : 1, p.mypid() == 0 ? 8 : 4)};
    EXPECT_EQ(p.mylb(A, theirs, 1), kMaxInt);
    EXPECT_EQ(p.myub(A, theirs, 1), kMinInt);
  });
}

TEST(RtBasic, LocalReadWriteRoundTrip) {
  Runtime rt(2, debug());
  int A = rt.declareArray<double>(
      "A", Section{Triplet(1, 8)},
      Distribution(Section{Triplet(1, 8)}, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    Section mine{Triplet(4 * p.mypid() + 1, 4 * p.mypid() + 4)};
    std::vector<double> vals{10, 11, 12, 13};
    for (auto& v : vals) v += p.mypid() * 100;
    p.write<double>(A, mine, vals);
    auto back = p.read<double>(A, mine);
    EXPECT_EQ(back, vals);
    // Point get/set.
    p.set<double>(A, Point{4 * p.mypid() + 2}, -1.0);
    EXPECT_EQ(p.get<double>(A, Point{4 * p.mypid() + 2}), -1.0);
  });
}

TEST(RtBasic, SimpleExampleOwnerComputes) {
  // The paper's section 2.2 program: A[i] = A[i] + B[i] with all arrays
  // block-distributed and T[mypid] the per-processor temporary.
  const int P = 4, N = 16;
  Runtime rt(P, debug());
  Section gN{Triplet(1, N)};
  Section gP{Triplet(0, P - 1)};
  Distribution dN(gN, {DimSpec::block(P)});
  // B deliberately distributed CYCLIC so transfers really happen.
  Distribution dNc(gN, {DimSpec::cyclic(P)});
  Distribution dP(gP, {DimSpec::block(P)});
  int A = rt.declareArray<double>("A", gN, dN);
  int B = rt.declareArray<double>("B", gN, dNc);
  int T = rt.declareArray<double>("T", gP, dP);

  rt.run([&](Proc& p) {
    // Initialize: A[i] = i, B[i] = 10*i (owners write their own parts).
    for (Index i = 1; i <= N; ++i) {
      Section si{Triplet(i)};
      if (p.iown(A, si)) p.set<double>(A, Point{i}, static_cast<double>(i));
      if (p.iown(B, si))
        p.set<double>(B, Point{i}, 10.0 * static_cast<double>(i));
    }
    p.barrier();
    for (Index i = 1; i <= N; ++i) {
      Section si{Triplet(i)};
      Section tp{Triplet(p.mypid())};
      // iown(B[i]) : { B[i] -> }
      if (p.iown(B, si)) p.send(B, si);
      // iown(A[i]) : { T[mypid] <- B[i]; await(T[mypid]); A[i] += T }
      if (p.iown(A, si)) {
        p.recv(T, tp, B, si);
        EXPECT_TRUE(p.await(T, tp));
        double a = p.get<double>(A, Point{i});
        double t = p.get<double>(T, Point{p.mypid()});
        p.set<double>(A, Point{i}, a + t);
      }
    }
    p.barrier();
    // Verify: A[i] == 11*i on the owner.
    for (Index i = 1; i <= N; ++i) {
      Section si{Triplet(i)};
      if (p.iown(A, si))
        EXPECT_DOUBLE_EQ(p.get<double>(A, Point{i}), 11.0 * i);
    }
  });
  // Matching sends/receives all consumed.
  EXPECT_EQ(rt.fabric().undeliveredCount(), 0u);
}

TEST(RtBasic, VectorizedSectionTransfer) {
  // Whole-section send/recv (message vectorization): one message instead
  // of four.
  const int P = 2, N = 8;
  Runtime rt(P, debug());
  Section g{Triplet(1, N)};
  Distribution d(g, {DimSpec::block(P)});
  int A = rt.declareArray<double>("A", g, d);
  int R = rt.declareArray<double>(
      "R", Section{Triplet(1, N), Triplet(0, P - 1)},
      Distribution(Section{Triplet(1, N), Triplet(0, P - 1)},
                   {DimSpec::collapsed(), DimSpec::block(P)}));
  rt.fabric().resetStats();
  rt.run([&](Proc& p) {
    Section mine{Triplet(4 * p.mypid() + 1, 4 * p.mypid() + 4)};
    std::vector<double> init{1, 2, 3, 4};
    p.write<double>(A, mine, init);
    p.barrier();
    int other = 1 - p.mypid();
    Section theirs{Triplet(4 * other + 1, 4 * other + 4)};
    // Both send their whole block to the other (bound destinations).
    p.send(A, mine, std::vector<int>{other});
    Section dst{Triplet(4 * other + 1, 4 * other + 4), Triplet(p.mypid())};
    p.recv(R, dst, A, theirs);
    EXPECT_TRUE(p.await(R, dst));
    auto got = p.read<double>(R, dst);
    EXPECT_EQ(got, init);  // other proc wrote the same values
  });
  auto s = rt.fabric().totalStats();
  EXPECT_EQ(s.messagesSent, 2u);  // exactly one message each way
  EXPECT_EQ(s.bytesSent, 2u * 4u * sizeof(double));
}

TEST(RtBasic, AccessibleFalseWhileReceivePending) {
  // accessible() lets a processor do background work while waiting
  // (paper section 2.3).
  Runtime rt(2, debug());
  Section g{Triplet(0, 1)};
  Distribution d(g, {DimSpec::block(2)});
  int A = rt.declareArray<double>("A", g, d);
  rt.run([&](Proc& p) {
    Section mine{Triplet(p.mypid())};
    if (p.mypid() == 1) {
      Section src{Triplet(0)};
      p.recv(A, mine, A, src);
      // The receive is initiated but cannot have completed: p0 hasn't
      // sent yet (it is blocked in the barrier below until we get there).
      EXPECT_TRUE(p.iown(A, mine));        // transitional is still owned
      EXPECT_FALSE(p.accessible(A, mine)); // but not accessible
      p.barrier();
      EXPECT_TRUE(p.await(A, mine));
      EXPECT_TRUE(p.accessible(A, mine));
      EXPECT_DOUBLE_EQ(p.get<double>(A, Point{1}), 3.25);
    } else {
      p.set<double>(A, Point{0}, 3.25);
      p.barrier();
      p.send(A, Section{Triplet(0)}, std::vector<int>{1});
    }
  });
}

TEST(RtBasic, AwaitReturnsFalseOnUnownedSection) {
  Runtime rt(2);
  Section g{Triplet(1, 8)};
  int A = rt.declareArray<double>("A", g,
                                  Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    Section other{Triplet(p.mypid() == 0 ? 5 : 1, p.mypid() == 0 ? 8 : 4)};
    EXPECT_FALSE(p.await(A, other));
    // Partially-owned sections are also "unowned" in Figure 1's sense.
    EXPECT_FALSE(p.await(A, Section{Triplet(1, 8)}));
  });
}

TEST(RtBasic, DebugChecksCatchTransitionalRead) {
  Runtime rt(2, debug());
  Section g{Triplet(0, 1)};
  int A = rt.declareArray<double>("A", g,
                                  Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 1) {
      Section mine{Triplet(1)};
      p.recv(A, mine, A, Section{Triplet(0)});
      // Reading while transitional violates the usage rules.
      EXPECT_THROW(p.read<double>(A, mine), xdp::UsageError);
      p.barrier();
      p.await(A, mine);
    } else {
      p.barrier();  // ensure the read above happens before the send
      p.send(A, Section{Triplet(0)}, std::vector<int>{1});
    }
  });
}

TEST(RtBasic, DebugChecksCatchUnownedRead) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 8)};
  int A = rt.declareArray<double>("A", g,
                                  Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      EXPECT_THROW(p.read<double>(A, Section{Triplet(5, 8)}),
                   xdp::UsageError);
    }
  });
}

TEST(RtBasic, MulticastSendToSet) {
  const int P = 4;
  Runtime rt(P, debug());
  Section g{Triplet(0, P - 1)};
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(P)}));
  int R = rt.declareArray<double>(
      "R", Section{Triplet(0, P - 1)},
      Distribution(Section{Triplet(0, P - 1)}, {DimSpec::block(P)}));
  rt.run([&](Proc& p) {
    Section root{Triplet(0)};
    if (p.mypid() == 0) {
      p.set<double>(A, Point{0}, 99.0);
      p.send(A, root, std::vector<int>{1, 2, 3});  // E -> S broadcast
    } else {
      Section mine{Triplet(p.mypid())};
      p.recv(R, mine, A, root);
      EXPECT_TRUE(p.await(R, mine));
      EXPECT_DOUBLE_EQ(p.get<double>(R, Point{p.mypid()}), 99.0);
    }
  });
}

TEST(RtBasic, SymbolTableDumpHasFigure2Fields) {
  Runtime rt(4);
  Section gA{Triplet(1, 4), Triplet(1, 8)};
  rt.declareArray<double>(
      "A", gA,
      Distribution(gA, {DimSpec::collapsed(), DimSpec::block(4)}),
      SegmentShape::of({2, 1}));
  rt.run([](Proc&) {});
  std::string dump = dumpSymbolTable(rt.table(3));
  EXPECT_NE(dump.find("A"), std::string::npos);
  EXPECT_NE(dump.find("(*, BLOCK)"), std::string::npos);
  EXPECT_NE(dump.find("segdesc"), std::string::npos);
  EXPECT_NE(dump.find("accessible"), std::string::npos);
}

TEST(RtBasic, FreshTablesEachRun) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 4)};
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) p.set<double>(A, Point{1}, 5.0);
  });
  rt.run([&](Proc& p) {
    // Zero-initialized again.
    if (p.mypid() == 0) EXPECT_DOUBLE_EQ(p.get<double>(A, Point{1}), 0.0);
  });
}

}  // namespace
}  // namespace xdp::rt
