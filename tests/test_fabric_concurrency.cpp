// Stress suite for the sharded fabric: many real threads hammering the
// direct, rendezvous, snapshot, stats and fault paths at once. Meant to
// run under -DXDP_SANITIZE=thread (ctest -L sanitize); the assertions
// check conservation (every send completes exactly one receive), and TSan
// checks the locking.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "xdp/net/fabric.hpp"
#include "xdp/net/spmd.hpp"

namespace xdp::net {
namespace {

using sec::Index;
using sec::Section;
using sec::Triplet;

Name name(int sym, Index i) { return Name{sym, Section{Triplet(i, i)}, {}}; }

std::vector<std::byte> payload(int v) {
  return {static_cast<std::byte>(v & 0xff),
          static_cast<std::byte>((v >> 8) & 0xff)};
}

// Disjoint pairs (2k, 2k+1) exchange direct messages concurrently; each
// pair's traffic must be invisible to every other pair.
TEST(FabricConcurrency, ConcurrentDirectPairs) {
  constexpr int kProcs = 8;
  constexpr int kMsgs = 500;
  Fabric f(kProcs);
  std::atomic<int> received{0};
  runSpmd(kProcs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int i = 0; i < kMsgs; ++i) {
      if (pid % 2 == 0) {
        f.send(pid, name(pid, i), TransferKind::Data, payload(i), partner);
      } else {
        f.postReceive(pid, name(partner, i), TransferKind::Data,
                      [&](const Message&) {
                        received.fetch_add(1, std::memory_order_relaxed);
                      });
      }
    }
  });
  EXPECT_EQ(received.load(), (kProcs / 2) * kMsgs);
  EXPECT_EQ(f.undeliveredCount(), 0u);
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
  NetStats t = f.totalStats();
  EXPECT_EQ(t.messagesSent, t.messagesReceived);
  EXPECT_EQ(t.directSends, static_cast<std::uint64_t>((kProcs / 2) * kMsgs));
}

// All senders publish to ONE name, all receivers post interest for it:
// maximum pressure on the matcher lock and the publish-then-complete
// retry protocol. Conservation must hold exactly.
TEST(FabricConcurrency, RendezvousManyToManySameName) {
  constexpr int kProcs = 8;
  constexpr int kMsgs = 300;
  Fabric f(kProcs);
  std::atomic<int> received{0};
  runSpmd(kProcs, [&](int pid) {
    for (int i = 0; i < kMsgs; ++i) {
      if (pid % 2 == 0) {
        f.send(pid, name(7, 0), TransferKind::Data, payload(i), std::nullopt);
      } else {
        f.postReceive(pid, name(7, 0), TransferKind::Data,
                      [&](const Message&) {
                        received.fetch_add(1, std::memory_order_relaxed);
                      });
      }
    }
  });
  EXPECT_EQ(received.load(), (kProcs / 2) * kMsgs);
  EXPECT_EQ(f.undeliveredCount(), 0u);
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
}

// Mixed traffic: every thread's receives use its own pid as the name, and
// its partner sends to that name both directly and through the matcher —
// so direct completions continuously race the receive's registered
// rendezvous interest (the stale-entry retry path), while traffic stays
// balanced per endpoint and must drain completely.
TEST(FabricConcurrency, DirectAndRendezvousRaceOnOneName) {
  constexpr int kProcs = 6;
  constexpr int kRounds = 200;
  Fabric f(kProcs);
  std::atomic<int> received{0};
  runSpmd(kProcs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int i = 0; i < kRounds; ++i) {
      // Two receives on my name, then one direct + one rendezvous send to
      // the partner's name: each endpoint's in/out totals match.
      for (int r = 0; r < 2; ++r)
        f.postReceive(pid, name(pid, 0), TransferKind::Data,
                      [&](const Message&) {
                        received.fetch_add(1, std::memory_order_relaxed);
                      });
      f.send(pid, name(partner, 0), TransferKind::Data, payload(i), partner);
      f.send(pid, name(partner, 0), TransferKind::Data, payload(i),
             std::nullopt);
    }
  });
  EXPECT_EQ(received.load(), kProcs * kRounds * 2);
  EXPECT_EQ(f.undeliveredCount(), 0u);
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
}

// Monitoring thread reads stats/clock/makespan/undeliveredCount while the
// SPMD region is live — the reads must be data-race-free and per-endpoint
// consistent (satellite: NetStats readable mid-run).
TEST(FabricConcurrency, StatsAndClocksReadableMidRun) {
  constexpr int kProcs = 4;
  constexpr int kMsgs = 400;
  Fabric f(kProcs);
  std::atomic<bool> done{false};
  std::atomic<int> received{0};
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      // totalStats() reads endpoints one lock at a time (not one global
      // cut), so cross-endpoint inequalities need an ordered read: sum
      // the receivers (odd pids) BEFORE the senders. Receive counts can
      // only lag their sends, and send counts only grow, so summing in
      // this order keeps received <= sent even mid-run.
      NetStats recv, sent;
      for (int p = 1; p < kProcs; p += 2) recv += f.stats(p);
      for (int p = 0; p < kProcs; p += 2) sent += f.stats(p);
      EXPECT_LE(recv.messagesReceived, sent.messagesSent);
      EXPECT_LE(recv.bytesReceived, sent.bytesSent);
      (void)f.totalStats();
      for (int p = 0; p < kProcs; ++p) EXPECT_GE(f.clock(p), 0.0);
      (void)f.makespan();
      (void)f.undeliveredCount();
      (void)f.pendingReceiveCount();
    }
  });
  runSpmd(kProcs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int i = 0; i < kMsgs; ++i) {
      if (pid % 2 == 0) {
        f.send(pid, name(pid, i), TransferKind::Data, payload(i), partner);
        f.advance(pid, 0.25);
      } else {
        f.postReceive(pid, name(partner, i), TransferKind::Data,
                      [&](const Message&) {
                        received.fetch_add(1, std::memory_order_relaxed);
                      });
      }
    }
  });
  done.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(received.load(), (kProcs / 2) * kMsgs);
}

// snapshot() takes every endpoint lock at once mid-traffic; it must not
// deadlock against senders/receivers and must observe a consistent cut.
TEST(FabricConcurrency, SnapshotDuringTraffic) {
  constexpr int kProcs = 6;
  constexpr int kMsgs = 300;
  Fabric f(kProcs);
  std::atomic<bool> done{false};
  std::atomic<int> received{0};
  std::thread snapper([&] {
    while (!done.load(std::memory_order_acquire)) {
      FabricSnapshot s = f.snapshot();
      for (const auto& r : s.pendingReceives) {
        EXPECT_GE(r.pid, 0);
        EXPECT_LT(r.pid, kProcs);
      }
      for (const auto& m : s.undelivered) {
        EXPECT_GE(m.src, 0);
        EXPECT_LT(m.src, kProcs);
      }
    }
  });
  runSpmd(kProcs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int i = 0; i < kMsgs; ++i) {
      f.postReceive(pid, name(pid, 0), TransferKind::Data,
                    [&](const Message&) {
                      received.fetch_add(1, std::memory_order_relaxed);
                    });
      const bool direct = (i % 2 == 0);
      f.send(pid, name(partner, 0), TransferKind::Data, payload(i),
             direct ? std::optional<int>(partner) : std::nullopt);
    }
  });
  done.store(true, std::memory_order_release);
  snapper.join();
  EXPECT_EQ(received.load(), kProcs * kMsgs);
  EXPECT_EQ(f.undeliveredCount(), 0u);
}

// Every message duplicated (dupProb = 1) under full concurrency: the
// dedup layer must deliver exactly once per original send, and the
// suppressed/purged twins must not leak into any queue.
TEST(FabricConcurrency, ExactlyOnceUnderConcurrentDuplication) {
  constexpr int kProcs = 8;
  constexpr int kMsgs = 200;
  FaultPlan plan;
  plan.seed = 42;
  plan.dupProb = 1.0;
  Fabric f(kProcs);
  f.setFaultPlan(plan);
  std::atomic<int> received{0};
  runSpmd(kProcs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int i = 0; i < kMsgs; ++i) {
      if (pid % 2 == 0) {
        const bool direct = (i % 3 != 0);
        f.send(pid, name(pid, i), TransferKind::Data, payload(i),
               direct ? std::optional<int>(partner) : std::nullopt);
      } else {
        f.postReceive(pid, name(partner, i), TransferKind::Data,
                      [&](const Message&) {
                        received.fetch_add(1, std::memory_order_relaxed);
                      });
      }
    }
  });
  const int expected = (kProcs / 2) * kMsgs;
  EXPECT_EQ(received.load(), expected);  // exactly once, never twice
  EXPECT_EQ(f.undeliveredCount(), 0u);   // no twin stranded in a queue
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
  FaultStats fs = f.faultStats();
  EXPECT_EQ(fs.duplicated, static_cast<std::uint64_t>(expected));
  EXPECT_EQ(fs.suppressedDuplicates, fs.duplicated);  // every twin killed
}

// Barriers interleaved with traffic and concurrent makespan/stats reads:
// exercises the barrierMu_ -> endpoint release path against endpoint-only
// readers.
TEST(FabricConcurrency, BarrierWithConcurrentReaders) {
  constexpr int kProcs = 8;
  constexpr int kRounds = 50;
  Fabric f(kProcs);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)f.makespan();
      (void)f.totalStats();
      (void)f.barrierWaiters();
      (void)f.barrierEpoch();
    }
  });
  std::atomic<int> received{0};
  runSpmd(kProcs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int r = 0; r < kRounds; ++r) {
      if (pid % 2 == 0) {
        f.send(pid, name(pid, r), TransferKind::Data, payload(r), partner);
      } else {
        f.postReceive(pid, name(partner, r), TransferKind::Data,
                      [&](const Message&) {
                        received.fetch_add(1, std::memory_order_relaxed);
                      });
      }
      f.advance(pid, 0.5 + pid);
      f.barrier(pid);
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(received.load(), (kProcs / 2) * kRounds);
  EXPECT_EQ(f.barrierEpoch(), static_cast<std::uint64_t>(kRounds));
  // After each barrier all clocks align to max + barrierCost, so at the
  // join every clock is at least kRounds * barrierCost.
  for (int p = 0; p < kProcs; ++p)
    EXPECT_GE(f.clock(p), kRounds * f.model().barrierCost);
}

// Hot per-endpoint clock churn from every thread at once; totals must be
// exact (each advance is applied under the endpoint lock).
TEST(FabricConcurrency, ClockAdvancesAreNotLost) {
  constexpr int kProcs = 4;
  constexpr int kTicks = 2000;
  Fabric f(kProcs);
  runSpmd(kProcs, [&](int pid) {
    for (int i = 0; i < kTicks; ++i) f.advance(pid, 1.0);
  });
  for (int p = 0; p < kProcs; ++p)
    EXPECT_DOUBLE_EQ(f.clock(p), static_cast<double>(kTicks));
  EXPECT_DOUBLE_EQ(f.makespan(), static_cast<double>(kTicks));
}

}  // namespace
}  // namespace xdp::net
