// The section 4 3-D FFT pipeline: all three paper stages must compute the
// reference transform, ownership must end up redistributed, and the fused
// stage must pipeline the redistribution (earlier send initiation =>
// smaller modeled makespan).
#include <gtest/gtest.h>

#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"

namespace xdp::opt {
namespace {

using apps::Complex;
using apps::Fft3dConfig;
using interp::Interpreter;
using sec::Section;
using sec::Triplet;

struct FftRun {
  std::vector<Complex> values;
  net::NetStats net;
  interp::InterpStats stats;
  double makespan = 0.0;
};

il::Program stage2Of(const il::Program& s1) {
  return singleIterationElimination(computeRuleElimination(s1));
}

il::Program stage3Of(const il::Program& s1) {
  return awaitSinking(loopFusion(stage2Of(s1)));
}

FftRun runFft(const il::Program& prog, const Fft3dConfig& cfg,
              bool debugChecks = true) {
  rt::RuntimeOptions opts;
  opts.debugChecks = debugChecks;
  Interpreter in(prog, opts);
  apps::registerFillKernel(in, cfg.seed);
  apps::registerFftKernels(in, cfg.flopCost);
  in.run();
  FftRun r;
  Section g{Triplet(1, cfg.n), Triplet(1, cfg.n), Triplet(1, cfg.n)};
  r.values = apps::gatherC128(in.runtime(), 0, g);
  r.net = in.runtime().fabric().totalStats();
  r.stats = in.totalStats();
  r.makespan = in.runtime().fabric().makespan();
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
  return r;
}

void expectMatchesReference(const FftRun& r, const Fft3dConfig& cfg) {
  auto expect = apps::fft3dReference(cfg);
  ASSERT_EQ(r.values.size(), expect.size());
  double scale = std::pow(static_cast<double>(cfg.n), 1.5);
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_NEAR(std::abs(r.values[i] - expect[i]), 0.0, 1e-9 * scale)
        << "element " << i;
}

TEST(OptFft, Stage1MatchesReference) {
  Fft3dConfig cfg{.n = 8, .nprocs = 4};
  auto r = runFft(apps::buildFft3dStage1(cfg), cfg);
  expectMatchesReference(r, cfg);
  // Redistribution: N messages per processor, all ownership+value.
  EXPECT_EQ(r.net.messagesSent, static_cast<std::uint64_t>(cfg.n) * 4u);
  EXPECT_EQ(r.net.ownershipTransfers, r.net.messagesSent);
}

TEST(OptFft, Stage2CreAndSieMatchReference) {
  Fft3dConfig cfg{.n = 8, .nprocs = 4};
  il::Program s1 = apps::buildFft3dStage1(cfg);
  il::Program s2 = stage2Of(s1);
  auto r1 = runFft(s1, cfg);
  auto r2 = runFft(s2, cfg);
  expectMatchesReference(r2, cfg);
  // Guards are gone except the nonempty() receive guards.
  std::string text = il::printStmt(s2, s2.body);
  EXPECT_EQ(text.find("iown"), std::string::npos);
  // Guard work drops: stage1 evaluates iown per (k, proc) pair.
  EXPECT_LT(r2.stats.rulesEvaluated, r1.stats.rulesEvaluated);
  EXPECT_LT(r2.stats.loopIterations, r1.stats.loopIterations);
  // Same traffic, same results.
  EXPECT_EQ(r2.net.messagesSent, r1.net.messagesSent);
}

TEST(OptFft, Stage2TextShowsMypidForm) {
  Fft3dConfig cfg{.n = 8, .nprocs = 4};
  il::Program s2 = stage2Of(apps::buildFft3dStage1(cfg));
  std::string text = il::printStmt(s2, s2.body);
  // SIE replaced the p loop by mypid substitution.
  EXPECT_NE(text.find("part(mypid)"), std::string::npos);
}

TEST(OptFft, Stage3FusedMatchesReference) {
  Fft3dConfig cfg{.n = 8, .nprocs = 4};
  il::Program s1 = apps::buildFft3dStage1(cfg);
  il::Program s3 = stage3Of(s1);
  auto r = runFft(s3, cfg);
  expectMatchesReference(r, cfg);
  EXPECT_EQ(r.net.messagesSent, static_cast<std::uint64_t>(cfg.n) * 4u);
}

TEST(OptFft, Stage3ActuallyFusedAndSank) {
  Fft3dConfig cfg{.n = 8, .nprocs = 4};
  il::Program s2 = stage2Of(apps::buildFft3dStage1(cfg));
  il::Program fused = loopFusion(s2);
  // Count top-level do-loops: stage2 has L1, L2, sends, recvs, L4 = 5;
  // fusion merges L2+sends+recvs (L4 must stay out: its awaits would pull
  // the consumer's synchronization into the producer loop).
  auto countTopLoops = [](const il::Program& p) {
    int n = 0;
    for (const auto& s : p.body->stmts)
      if (s->kind == il::StmtKind::For) ++n;
    return n;
  };
  EXPECT_EQ(countTopLoops(s2), 5);
  EXPECT_EQ(countTopLoops(fused), 3);
  il::Program s3 = awaitSinking(fused);
  std::string text = il::printStmt(s3, s3.body);
  // The sunk await names a single line, not a whole plane.
  EXPECT_NE(text.find("await(A[i,j,1:8])"), std::string::npos);
}

TEST(OptFft, FusionPipelinesTheRedistribution) {
  // Fusion initiates each plane's transfer right after that plane's fft.
  // In a perfectly symmetric run the makespan is pinned by the last
  // plane's fft -> transfer path either way; the benefit appears under
  // load imbalance, where the slow sender's early planes reach their
  // target processors long before its whole sweep finishes. Metric: the
  // average processor finish time (fast receivers stop waiting earlier).
  Fft3dConfig cfg{
      .n = 16, .nprocs = 4, .seed = 7, .flopCost = 2e-6, .skewCost = 4e-4};
  il::Program s1 = apps::buildFft3dStage1(cfg);
  il::Program s2 = stage2Of(s1);
  il::Program s3 = stage3Of(s1);

  auto avgFinish = [&](const il::Program& prog) {
    rt::RuntimeOptions opts;
    Interpreter in(prog, opts);
    apps::registerFillKernel(in, cfg.seed);
    apps::registerFftKernels(in, cfg.flopCost);
    in.run();
    double sum = 0.0;
    for (int p = 0; p < cfg.nprocs; ++p)
      sum += in.runtime().fabric().clock(p);
    return std::pair<double, double>(sum / cfg.nprocs,
                                     in.runtime().fabric().makespan());
  };
  auto [avg2, span2] = avgFinish(s2);
  auto [avg3, span3] = avgFinish(s3);
  expectMatchesReference(runFft(s3, cfg, /*debugChecks=*/false), cfg);
  EXPECT_LT(avg3, avg2);             // pipelining frees the fast procs
  EXPECT_LE(span3, span2 * 1.05);    // and never hurts the critical path
}

TEST(OptFft, BindingRemovesMatchmakerHops) {
  Fft3dConfig cfg{.n = 8, .nprocs = 4};
  il::Program s3 = stage3Of(apps::buildFft3dStage1(cfg));
  il::Program bound = commBinding(s3);
  auto unbound = runFft(s3, cfg);
  auto r = runFft(bound, cfg);
  expectMatchesReference(r, cfg);
  EXPECT_GT(unbound.net.rendezvousSends, 0u);
  EXPECT_EQ(r.net.rendezvousSends, 0u);
}

TEST(OptFft, EndStateIsTargetDistribution) {
  Fft3dConfig cfg{.n = 8, .nprocs = 4};
  il::Program s3 = commBinding(stage3Of(apps::buildFft3dStage1(cfg)));
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  Interpreter in(s3, opts);
  apps::registerFillKernel(in, cfg.seed);
  apps::registerFftKernels(in, cfg.flopCost);
  in.run();
  // After the run each processor owns exactly its (*,BLOCK,*) part.
  auto target = apps::fft3dTargetDist(cfg);
  for (int p = 0; p < cfg.nprocs; ++p) {
    const sec::RegionList part = target.localPart(p);
    for (const Section& s : part.sections())
      EXPECT_TRUE(in.runtime().table(p).iown(0, s)) << "p" << p;
    // And owns nothing else: total owned == part size.
    EXPECT_EQ(in.runtime().table(p).totalOwnedElems(),
              static_cast<std::size_t>(part.count()));
  }
}

TEST(OptFft, TwoProcAndEightProcConfigs) {
  for (int P : {2, 8}) {
    Fft3dConfig cfg{.n = 8, .nprocs = P};
    il::Program s3 = commBinding(stage3Of(apps::buildFft3dStage1(cfg)));
    auto r = runFft(s3, cfg);
    expectMatchesReference(r, cfg);
  }
}

}  // namespace
}  // namespace xdp::opt
