// The Figure-2/Figure-3 renderers: owner grids, segment grids, symbol
// table dumps — checked against hand-computed layouts.
#include <gtest/gtest.h>

#include "xdp/rt/dump.hpp"
#include "xdp/rt/proc.hpp"
#include "xdp/support/check.hpp"

namespace xdp::rt {
namespace {

using dist::DimSpec;
using dist::Distribution;
using dist::SegmentShape;
using sec::Section;
using sec::Triplet;

SymbolDecl fig3Decl(DimSpec d1, SegmentShape shape) {
  SymbolDecl d;
  d.index = 0;
  d.name = "C";
  d.global = Section{Triplet(1, 4), Triplet(1, 8)};
  d.dist = Distribution(d.global, {DimSpec::block(2), d1});
  d.segShape = shape;
  return d;
}

TEST(Dump, OwnerGridBlockBlock) {
  auto d = fig3Decl(DimSpec::block(2), {});
  std::string grid = dumpOwnerGrid(d);
  // First row: P0 x4 then P2 x4 (first distributed dim varies fastest).
  EXPECT_NE(grid.find("P0 P0 P0 P0 P2 P2 P2 P2"), std::string::npos);
  EXPECT_NE(grid.find("P1 P1 P1 P1 P3 P3 P3 P3"), std::string::npos);
}

TEST(Dump, OwnerGridBlockCyclic) {
  auto d = fig3Decl(DimSpec::cyclic(2), {});
  std::string grid = dumpOwnerGrid(d);
  EXPECT_NE(grid.find("P0 P2 P0 P2 P0 P2 P0 P2"), std::string::npos);
  EXPECT_NE(grid.find("P1 P3 P1 P3 P1 P3 P1 P3"), std::string::npos);
}

TEST(Dump, SegmentGridShowsOnlyOwnedCells) {
  auto d = fig3Decl(DimSpec::block(2), SegmentShape::of({2, 1}));
  std::string grid = dumpSegmentGrid(d, 2);  // the paper's P3
  // p2 owns rows 1:2 x cols 5:8; other cells are dots. Column-major
  // segment letters: a b c d across the four owned columns.
  EXPECT_NE(grid.find(". . . . a b c d"), std::string::npos);
  EXPECT_NE(grid.find("4 segments"), std::string::npos);
}

TEST(Dump, SegmentGridRejectsNonRank2) {
  SymbolDecl d;
  d.index = 0;
  d.name = "V";
  d.global = Section{Triplet(1, 8)};
  d.dist = Distribution(d.global, {DimSpec::block(2)});
  EXPECT_THROW(dumpOwnerGrid(d), xdp::Error);
  EXPECT_THROW(dumpSegmentGrid(d, 0), xdp::Error);
}

TEST(Dump, SymbolTableShowsRuntimeState) {
  Runtime rt(2);
  Section g{Triplet(1, 8)};
  const int A = rt.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(1)}), SegmentShape::of({4}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0)
      p.sendOwnership(A, Section{Triplet(1, 4)}, true, std::vector<int>{1});
    else
      p.recvOwnership(A, Section{Triplet(1, 4)}, true);
  });
  std::string p0 = dumpSymbolTable(rt.table(0));
  std::string p1 = dumpSymbolTable(rt.table(1));
  // p0 keeps one accessible segment [5:8]; p1 gained [1:4].
  EXPECT_NE(p0.find("[5:8]"), std::string::npos);
  EXPECT_EQ(p0.find("[1:4]"), std::string::npos);
  EXPECT_NE(p1.find("[1:4]"), std::string::npos);
  EXPECT_NE(p1.find("accessible"), std::string::npos);
}

TEST(Dump, SymbolTableShowsTransitionalState) {
  Runtime rt(2);
  Section g{Triplet(0, 1)};
  const int A = rt.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 1) {
      // Initiate a receive that will never complete within the region for
      // the purpose of observing the transitional state...
      p.recv(A, Section{Triplet(1)}, A, Section{Triplet(0)});
      std::string dump = dumpSymbolTable(p.table());
      EXPECT_NE(dump.find("transitional"), std::string::npos);
      p.barrier();
    } else {
      p.barrier();
      p.send(A, Section{Triplet(0)}, std::vector<int>{1});  // complete it
    }
  });
}

}  // namespace
}  // namespace xdp::rt
