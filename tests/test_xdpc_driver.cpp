// End-to-end tests of the xdpc driver's exit-code contract and diagnostic
// formatting: 0 = success, 1 = diagnostics or a compile/run failure,
// 2 = usage error (bad flag, unknown pass, missing file operand). Runs the
// real binary (XDPC_PATH) against the shipped programs and against seeded
// defect programs written to a temp directory.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/wait.h>

namespace {

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr interleaved
};

RunResult runXdpc(const std::string& args) {
  std::string cmd = std::string(XDPC_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult r;
  char buf[4096];
  while (pipe && std::fgets(buf, sizeof buf, pipe)) r.output += buf;
  if (pipe) {
    int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return r;
}

std::string programPath(const std::string& name) {
  return std::string(XDP_PROGRAMS_DIR) + "/" + name;
}

std::string writeTemp(const std::string& name, const std::string& text) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(XdpcDriver, CleanProgramAnalyzesWithExitZero) {
  RunResult r = runXdpc(programPath("vecadd.xdp") + " --analyze");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("0 errors"), std::string::npos) << r.output;
}

TEST(XdpcDriver, AnalyzeComposesWithThePipeline) {
  RunResult r =
      runXdpc(programPath("jacobi.xdp") + " --pipeline --analyze");
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(XdpcDriver, VerifyPassesExitsZeroOnCleanPrograms) {
  RunResult r =
      runXdpc(programPath("cannon.xdp") + " --pipeline --verify-passes");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("no introduced violations"), std::string::npos)
      << r.output;
}

TEST(XdpcDriver, DefectiveProgramExitsOneWithFileLineDiagnostic) {
  std::string path = writeTemp("xdpc_defect.xdp",
                               "procs 2\n"
                               "array A f64 [1:8] (BLOCK)\n"
                               "\n"
                               "fill(A[1:8])\n"
                               "(mypid == 0) : { A[1:4] -> {1} }\n");
  RunResult r = runXdpc(path + " --analyze");
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find(path + ":5:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("unmatched-send"), std::string::npos) << r.output;
}

TEST(XdpcDriver, EachDiagnosticClassReportsItsKind) {
  struct Case {
    const char* kind;
    const char* body;
  };
  const Case cases[] = {
      {"unmatched-send", "(mypid == 0) : { A[1:4] -> {1} }\n"},
      {"orphan-recv", "(mypid == 1) : { B[5:8] <- A[1:4]\nawait(B[5:8]) }\n"},
      {"send-unowned",
       "(mypid == 0) : { A[5:8] -> {1} }\n"
       "(mypid == 1) : { B[5:8] <- A[5:8]\nawait(B[5:8]) }\n"},
      {"double-ownership",
       "(mypid == 0) : { A[1:4] => {1}\nA[1:4] => {1} }\n"
       "(mypid == 1) : { A[1:4] <= }\n"},
      {"not-accessible",
       "(mypid == 0) : { A[1:4] -> {1} }\n"
       "(mypid == 1) : { B[5:8] <- A[1:4]\nx = B[6]\nawait(B[5:8]) }\n"},
      {"transfer-mismatch",
       "(mypid == 0) : { A[1:4] -> {1} }\n"
       "(mypid == 1) : { B[5:6] <- A[1:4]\nawait(B[5:6]) }\n"},
  };
  for (const Case& c : cases) {
    std::string src = std::string("procs 2\n") +
                      "array A f64 [1:8] (BLOCK)\n" +
                      "array B f64 [1:8] (BLOCK)\n\n" +
                      "fill(A[1:8], B[1:8])\n" + c.body;
    std::string path =
        writeTemp(std::string("xdpc_") + c.kind + ".xdp", src);
    RunResult r = runXdpc(path + " --analyze");
    EXPECT_EQ(r.exitCode, 1) << c.kind << "\n" << r.output;
    EXPECT_NE(r.output.find(c.kind), std::string::npos)
        << c.kind << "\n" << r.output;
    EXPECT_NE(r.output.find(path + ":"), std::string::npos)
        << c.kind << "\n" << r.output;
  }
}

TEST(XdpcDriver, AwaitMismatchWarnsWithoutFailing) {
  std::string path = writeTemp("xdpc_await.xdp",
                               "procs 2\n"
                               "array A f64 [1:8] (BLOCK)\n"
                               "array B f64 [1:8] (BLOCK)\n\n"
                               "fill(A[1:8], B[1:8])\n"
                               "(mypid == 0) : { A[1:4] -> {1} }\n"
                               "(mypid == 1) : {\n"
                               "await(B[5:8])\n"
                               "B[5:8] <- A[1:4]\n"
                               "}\n");
  RunResult r = runXdpc(path + " --analyze");
  EXPECT_EQ(r.exitCode, 0) << r.output;  // warnings do not fail the build
  EXPECT_NE(r.output.find("await-mismatch"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("warning:"), std::string::npos) << r.output;
}

TEST(XdpcDriver, UsageErrorsExitTwo) {
  EXPECT_EQ(runXdpc("").exitCode, 2);
  EXPECT_EQ(runXdpc("--analyze").exitCode, 2);  // no file operand
  EXPECT_EQ(runXdpc(programPath("vecadd.xdp") + " --no-such-flag").exitCode,
            2);
  EXPECT_EQ(runXdpc(programPath("vecadd.xdp") + " --passes no-such-pass")
                .exitCode,
            2);
}

TEST(XdpcDriver, MissingFileExitsOne) {
  RunResult r = runXdpc("/nonexistent/nope.xdp --analyze");
  EXPECT_EQ(r.exitCode, 1) << r.output;
}

TEST(XdpcDriver, ParseErrorExitsOne) {
  std::string path = writeTemp("xdpc_bad.xdp", "procs procs procs\n");
  RunResult r = runXdpc(path + " --print");
  EXPECT_EQ(r.exitCode, 1) << r.output;
}

/// "<key>: <digits>" extracted from a line like "cost: 144 bytes in ...",
/// or -1 when absent.
long long numberAfter(const std::string& text, const std::string& tag) {
  auto pos = text.find(tag);
  if (pos == std::string::npos) return -1;
  return std::strtoll(text.c_str() + pos + tag.size(), nullptr, 10);
}

TEST(XdpcDriver, CostReportMatchesRuntimeTrafficBitExactly) {
  // The tentpole contract: on every shipped program, under the standard
  // pipeline, the static model's bytes and messages equal the NetStats
  // counters --run prints — on both backends.
  const char* programs[] = {"vecadd.xdp", "jacobi.xdp", "cannon.xdp",
                            "ownership.xdp", "taskfarm.xdp"};
  for (const char* name : programs) {
    for (const char* extra : {"", " --pipeline"}) {
      RunResult cost =
          runXdpc(programPath(name) + extra + " --cost");
      ASSERT_EQ(cost.exitCode, 0) << name << extra << "\n" << cost.output;
      const long long bytes = numberAfter(cost.output, "cost: ");
      ASSERT_GE(bytes, 0) << name << extra << "\n" << cost.output;
      EXPECT_NE(cost.output.find("(exact)"), std::string::npos)
          << name << extra << "\n" << cost.output;
      for (const char* backend : {"tree", "vm"}) {
        RunResult run = runXdpc(programPath(name) + extra +
                                " --run --backend=" + backend);
        ASSERT_EQ(run.exitCode, 0) << name << extra << "\n" << run.output;
        // "..., <bytes> bytes, ..." from the run summary.
        auto pos = run.output.find("unexpected), ");
        ASSERT_NE(pos, std::string::npos) << run.output;
        const long long measured =
            std::strtoll(run.output.c_str() + pos + 13, nullptr, 10);
        EXPECT_EQ(bytes, measured)
            << name << extra << " backend=" << backend << "\n"
            << cost.output << run.output;
      }
    }
  }
}

TEST(XdpcDriver, CostJsonHasStableKeys) {
  RunResult r =
      runXdpc(programPath("jacobi.xdp") + " --cost --format=json");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  for (const char* key :
       {"\"file\"", "\"exact\"", "\"bytes_moved\"", "\"messages\"",
        "\"lower_bound\"", "\"invariant_bound\"", "\"parametric_bound\"",
        "\"pct_of_optimal\"", "\"per_proc\"", "\"per_symbol\"",
        "\"per_stmt\"", "\"line\"", "\"col\""}) {
    EXPECT_NE(r.output.find(key), std::string::npos) << key << "\n"
                                                     << r.output;
  }
  EXPECT_EQ(numberAfter(r.output, "\"bytes_moved\":"), 144) << r.output;
  EXPECT_EQ(numberAfter(r.output, "\"lower_bound\":"), 144) << r.output;
}

TEST(XdpcDriver, AnalyzeJsonKeepsTheExitContract) {
  // Clean program: exit 0, machine-readable summary on stdout.
  RunResult clean =
      runXdpc(programPath("vecadd.xdp") + " --analyze --format=json");
  EXPECT_EQ(clean.exitCode, 0) << clean.output;
  EXPECT_NE(clean.output.find("\"errors\":0"), std::string::npos)
      << clean.output;
  EXPECT_NE(clean.output.find("\"diagnostics\":["), std::string::npos)
      << clean.output;

  // Defective program: still exit 1, and the diagnostic carries the
  // stable class/file/line/col/message keys.
  std::string path = writeTemp("xdpc_json_defect.xdp",
                               "procs 2\n"
                               "array A f64 [1:8] (BLOCK)\n"
                               "\n"
                               "fill(A[1:8])\n"
                               "(mypid == 0) : { A[1:4] -> {1} }\n");
  RunResult bad = runXdpc(path + " --analyze --format=json");
  EXPECT_EQ(bad.exitCode, 1) << bad.output;
  for (const char* key : {"\"class\":\"unmatched-send\"", "\"file\"",
                          "\"line\":5", "\"col\"", "\"message\"",
                          "\"severity\":\"error\""}) {
    EXPECT_NE(bad.output.find(key), std::string::npos) << key << "\n"
                                                       << bad.output;
  }
}

TEST(XdpcDriver, AutoPlaceAlignsVecaddAndComposesWithRun) {
  RunResult r = runXdpc(programPath("vecadd.xdp") + " --auto-place");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  EXPECT_NE(r.output.find("modeled 0 bytes"), std::string::npos)
      << r.output;
  // The rewritten placement then actually runs with zero traffic.
  RunResult run = runXdpc(programPath("vecadd.xdp") +
                          " --auto-place --pipeline --run");
  EXPECT_EQ(run.exitCode, 0) << run.output;
  EXPECT_NE(run.output.find(" 0 bytes"), std::string::npos) << run.output;
}

TEST(XdpcDriver, AutoPlaceJsonReportsOriginalAndBest) {
  RunResult r =
      runXdpc(programPath("vecadd.xdp") + " --auto-place --format=json");
  EXPECT_EQ(r.exitCode, 0) << r.output;
  for (const char* key :
       {"\"candidates_tried\"", "\"candidates_valid\"", "\"original\"",
        "\"best\"", "\"dists\"", "\"lower_bound\"", "\"pct_of_optimal\""}) {
    EXPECT_NE(r.output.find(key), std::string::npos) << key << "\n"
                                                     << r.output;
  }
}

}  // namespace
