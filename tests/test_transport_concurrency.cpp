// Differential stress suite for the pluggable transport: every scenario
// runs the same multi-threaded traffic over the locked (inline delivery)
// and ring (lock-free SPSC fast path) backends and asserts that the
// observable results — completed receives, conservation stats, fault
// decisions — are identical. Meant to run under -DXDP_SANITIZE=thread
// (ctest -L sanitize): TSan checks the ring's acquire/release protocol,
// the assertions check that deferred delivery never loses, duplicates,
// or reorders a message.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "xdp/net/fabric.hpp"
#include "xdp/net/spmd.hpp"

namespace xdp::net {
namespace {

using sec::Index;
using sec::Section;
using sec::Triplet;

Name name(int sym, Index i) { return Name{sym, Section{Triplet(i, i)}, {}}; }

std::vector<std::byte> payload(int v) {
  return {static_cast<std::byte>(v & 0xff),
          static_cast<std::byte>((v >> 8) & 0xff)};
}

int payloadValue(const Message& m) {
  return static_cast<int>(m.payload[0]) |
         (static_cast<int>(m.payload[1]) << 8);
}

TransportOptions ringOpts(std::uint32_t slots = 1024) {
  TransportOptions t;
  t.kind = TransportKind::Ring;
  t.ringSlots = slots;
  return t;
}

/// What one scenario run observed, for locked-vs-ring comparison.
struct Observed {
  int received = 0;
  NetStats stats{};
  FaultStats faults{};
  std::size_t undelivered = 0;
  std::size_t pendingReceives = 0;
};

// Even pids send `msgs` direct messages to their partner (pid ^ 1); odd
// pids post the matching receives. Optionally every message is subject to
// `plan`. Returns the drained end state.
Observed runPairTraffic(TransportKind kind, int nprocs, int msgs,
                        std::optional<FaultPlan> plan = std::nullopt) {
  TransportOptions topts;
  topts.kind = kind;
  Fabric f(nprocs, CostModel{}, topts);
  if (plan) f.setFaultPlan(*plan);
  std::atomic<int> received{0};
  runSpmd(nprocs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int i = 0; i < msgs; ++i) {
      if (pid % 2 == 0) {
        f.send(pid, name(pid, i), TransferKind::Data, payload(i), partner);
      } else {
        f.postReceive(pid, name(partner, i), TransferKind::Data,
                      [&](const Message&) {
                        received.fetch_add(1, std::memory_order_relaxed);
                      });
      }
    }
  });
  f.pollAll();  // reap any ring stragglers before reading end state
  Observed o;
  o.received = received.load();
  o.stats = f.totalStats();
  o.faults = f.faultStats();
  o.undelivered = f.undeliveredCount();
  o.pendingReceives = f.pendingReceiveCount();
  return o;
}

// The ring backend must complete exactly the same deliveries as the
// locked baseline on disjoint direct pair traffic, and drain to zero.
TEST(TransportConcurrency, DirectPairsDifferential) {
  constexpr int kProcs = 8, kMsgs = 400;
  const Observed locked =
      runPairTraffic(TransportKind::Locked, kProcs, kMsgs);
  const Observed ring = runPairTraffic(TransportKind::Ring, kProcs, kMsgs);
  EXPECT_EQ(locked.received, (kProcs / 2) * kMsgs);
  EXPECT_EQ(ring.received, locked.received);
  EXPECT_EQ(ring.stats.messagesSent, locked.stats.messagesSent);
  EXPECT_EQ(ring.stats.messagesReceived, locked.stats.messagesReceived);
  EXPECT_EQ(ring.stats.directSends, locked.stats.directSends);
  EXPECT_EQ(ring.undelivered, 0u);
  EXPECT_EQ(ring.pendingReceives, 0u);
}

// Direct completions racing registered rendezvous interest (the
// stale-entry retry path) with ring-deferred deliveries mixed in: every
// message still completes exactly one receive on both backends.
TEST(TransportConcurrency, DirectAndRendezvousRaceDifferential) {
  constexpr int kProcs = 6, kRounds = 150;
  auto run = [&](TransportKind kind) {
    TransportOptions topts;
    topts.kind = kind;
    Fabric f(kProcs, CostModel{}, topts);
    std::atomic<int> received{0};
    runSpmd(kProcs, [&](int pid) {
      const int partner = pid ^ 1;
      for (int i = 0; i < kRounds; ++i) {
        for (int r = 0; r < 2; ++r)
          f.postReceive(pid, name(pid, 0), TransferKind::Data,
                        [&](const Message&) {
                          received.fetch_add(1, std::memory_order_relaxed);
                        });
        f.send(pid, name(partner, 0), TransferKind::Data, payload(i),
               partner);
        f.send(pid, name(partner, 0), TransferKind::Data, payload(i),
               std::nullopt);
      }
    });
    f.pollAll();
    EXPECT_EQ(received.load(), kProcs * kRounds * 2);
    EXPECT_EQ(f.undeliveredCount(), 0u);
    EXPECT_EQ(f.pendingReceiveCount(), 0u);
  };
  run(TransportKind::Locked);
  run(TransportKind::Ring);
}

// A deliberately tiny ring (2 slots) forces the full-ring inline
// fallback on most sends. The fallback drains the destination before
// delivering inline, so per-(src,dst) FIFO order must survive the
// ring/inline mix — the receiver sees payloads 0,1,2,... in send order.
TEST(TransportConcurrency, FullRingBackpressurePreservesFifo) {
  constexpr int kMsgs = 500;
  Fabric f(2, CostModel{}, ringOpts(/*slots=*/2));
  runSpmd(2, [&](int pid) {
    if (pid != 0) return;
    for (int i = 0; i < kMsgs; ++i)
      f.send(0, name(7, 0), TransferKind::Data, payload(i), 1);
  });
  f.pollAll();  // the last <= 2 messages still sit in the ring
  EXPECT_EQ(f.undeliveredCount(), static_cast<std::size_t>(kMsgs));
  int next = 0;
  bool inOrder = true;
  for (int i = 0; i < kMsgs; ++i) {
    f.postReceive(1, name(7, 0), TransferKind::Data, [&](const Message& m) {
      if (payloadValue(m) != next) inOrder = false;
      ++next;
    });
  }
  EXPECT_TRUE(inOrder);
  EXPECT_EQ(next, kMsgs);
  EXPECT_EQ(f.undeliveredCount(), 0u);
}

// poll() honours its batch bound and the backlog gauges track it.
TEST(TransportConcurrency, BatchedReapRespectsBound) {
  Fabric f(2, CostModel{}, ringOpts());
  for (int i = 0; i < 10; ++i)
    f.send(0, name(7, i), TransferKind::Data, payload(i), 1);
  EXPECT_EQ(f.transportBacklog(1), 10u);
  EXPECT_EQ(f.totalTransportBacklog(), 10u);
  EXPECT_EQ(f.poll(1, 4), 4u);
  EXPECT_EQ(f.transportBacklog(1), 6u);
  EXPECT_EQ(f.poll(1, 4), 4u);
  EXPECT_EQ(f.poll(1, 4), 2u);
  EXPECT_EQ(f.poll(1, 4), 0u);
  EXPECT_EQ(f.totalTransportBacklog(), 0u);
  EXPECT_EQ(f.undeliveredCount(), 10u);  // delivered as unexpected
}

// Every message duplicated (dupProb = 1) on the ring backend: the dedup
// layer must deliver exactly once per original send even when original
// and twin arrive through a mix of ring and inline routes.
TEST(TransportConcurrency, ExactlyOnceUnderDuplicationOnRing) {
  constexpr int kProcs = 8, kMsgs = 200;
  FaultPlan plan;
  plan.seed = 42;
  plan.dupProb = 1.0;
  const Observed o =
      runPairTraffic(TransportKind::Ring, kProcs, kMsgs, plan);
  const int expected = (kProcs / 2) * kMsgs;
  EXPECT_EQ(o.received, expected);
  EXPECT_EQ(o.undelivered, 0u);
  EXPECT_EQ(o.pendingReceives, 0u);
  EXPECT_EQ(o.faults.duplicated, static_cast<std::uint64_t>(expected));
  EXPECT_EQ(o.faults.suppressedDuplicates, o.faults.duplicated);
}

// The per-source fault decision stream is keyed by each source's own send
// ordinal, so an identical plan must produce identical fault statistics
// and completion counts on both backends — fault injection may not
// depend on which transport carried the message.
TEST(TransportConcurrency, FaultDecisionsDifferential) {
  constexpr int kProcs = 8, kMsgs = 300;
  FaultPlan plan;
  plan.seed = 7;
  plan.dropProb = 0.25;
  plan.dupProb = 0.25;
  plan.delayProb = 0.25;
  plan.maxDelay = 1e-4;
  const Observed locked =
      runPairTraffic(TransportKind::Locked, kProcs, kMsgs, plan);
  const Observed ring =
      runPairTraffic(TransportKind::Ring, kProcs, kMsgs, plan);
  EXPECT_EQ(ring.received, locked.received);
  EXPECT_EQ(ring.faults.dropped, locked.faults.dropped);
  EXPECT_EQ(ring.faults.duplicated, locked.faults.duplicated);
  EXPECT_EQ(ring.faults.suppressedDuplicates,
            locked.faults.suppressedDuplicates);
  EXPECT_EQ(ring.faults.delayed, locked.faults.delayed);
  EXPECT_EQ(ring.stats.messagesReceived, locked.stats.messagesReceived);
  // Un-matched receives for dropped messages must strand identically.
  EXPECT_EQ(ring.pendingReceives, locked.pendingReceives);
}

// Barriers are quiescent points: entry drains the entrant's own inbox,
// release drains everyone, so after the joined region nothing is left in
// any ring and clocks have absorbed every modeled penalty.
TEST(TransportConcurrency, BarrierDrainsRingBacklog) {
  constexpr int kProcs = 8, kRounds = 50;
  Fabric f(kProcs, CostModel{}, ringOpts());
  std::atomic<int> received{0};
  runSpmd(kProcs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int r = 0; r < kRounds; ++r) {
      if (pid % 2 == 0) {
        f.send(pid, name(pid, r), TransferKind::Data, payload(r), partner);
      } else {
        f.postReceive(pid, name(partner, r), TransferKind::Data,
                      [&](const Message&) {
                        received.fetch_add(1, std::memory_order_relaxed);
                      });
      }
      f.advance(pid, 0.5 + pid);
      f.barrier(pid);
    }
  });
  EXPECT_EQ(received.load(), (kProcs / 2) * kRounds);
  EXPECT_EQ(f.totalTransportBacklog(), 0u);
  EXPECT_EQ(f.barrierEpoch(), static_cast<std::uint64_t>(kRounds));
  for (int p = 0; p < kProcs; ++p)
    EXPECT_GE(f.clock(p), kRounds * f.model().barrierCost);
}

// Monitoring thread reads snapshots, stats, and the lock-free backlog
// gauges while ring traffic is live: the reads must be data-race-free and
// the snapshot's queued-message count must stay in range.
TEST(TransportConcurrency, SnapshotAndBacklogReadableMidRun) {
  constexpr int kProcs = 4, kMsgs = 300;
  Fabric f(kProcs, CostModel{}, ringOpts());
  std::atomic<bool> done{false};
  std::atomic<int> received{0};
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      FabricSnapshot s = f.snapshot();
      for (const auto& r : s.pendingReceives) {
        EXPECT_GE(r.pid, 0);
        EXPECT_LT(r.pid, kProcs);
      }
      std::size_t total = 0;
      for (int p = 0; p < kProcs; ++p) total += f.transportBacklog(p);
      (void)total;
      (void)f.totalTransportBacklog();
      (void)f.undeliveredCount();
      (void)f.totalStats();
    }
  });
  runSpmd(kProcs, [&](int pid) {
    const int partner = pid ^ 1;
    for (int i = 0; i < kMsgs; ++i) {
      f.postReceive(pid, name(pid, 0), TransferKind::Data,
                    [&](const Message&) {
                      received.fetch_add(1, std::memory_order_relaxed);
                    });
      f.send(pid, name(partner, 0), TransferKind::Data, payload(i),
             partner);
    }
  });
  f.pollAll();
  done.store(true, std::memory_order_release);
  monitor.join();
  EXPECT_EQ(received.load(), kProcs * kMsgs);
  EXPECT_EQ(f.undeliveredCount(), 0u);
}

}  // namespace
}  // namespace xdp::net
