// Snapshot wire-format hardening (DESIGN.md §11): torn, bit-flipped, and
// version-mismatched snapshots must be rejected with CkptError — never a
// crash, never a partial apply — and the checkpoint store must fall back
// to the previous good snapshot when the newest one is damaged.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "xdp/ckpt/io.hpp"

namespace xdp::ckpt {
namespace {

namespace fs = std::filesystem;

Snapshot sampleSnapshot(std::uint64_t tag = 7) {
  Snapshot s;
  s.backend = 1;
  s.nprocs = 2;
  s.programHash = 0xFEEDu + tag;
  s.captureStep = tag;
  s.tables.push_back({std::byte{1}, std::byte{2}, std::byte{3}});
  s.tables.push_back({std::byte{4}, std::byte{5}});
  s.fabric = {std::byte{9}, std::byte{8}, std::byte{7}, std::byte{6}};
  ContImage c;
  c.engine = static_cast<std::uint8_t>(ContEngine::Tree);
  c.stats[2] = 41 + tag;
  c.payload = {std::byte{0xAA}, std::byte{0xBB}};
  s.conts.push_back(c);
  c.engine = static_cast<std::uint8_t>(ContEngine::Vm);
  c.finished = true;
  s.conts.push_back(c);
  return s;
}

TEST(CkptIo, EncodeDecodeRoundTrips) {
  Snapshot s = sampleSnapshot();
  Snapshot d = decodeSnapshot(encodeSnapshot(s));
  EXPECT_EQ(d.version, kSnapshotVersion);
  EXPECT_EQ(d.backend, s.backend);
  EXPECT_EQ(d.nprocs, s.nprocs);
  EXPECT_EQ(d.programHash, s.programHash);
  EXPECT_EQ(d.captureStep, s.captureStep);
  EXPECT_EQ(d.tables, s.tables);
  EXPECT_EQ(d.fabric, s.fabric);
  ASSERT_EQ(d.conts.size(), 2u);
  EXPECT_EQ(d.conts[0].engine, s.conts[0].engine);
  EXPECT_EQ(d.conts[0].stats, s.conts[0].stats);
  EXPECT_EQ(d.conts[0].payload, s.conts[0].payload);
  EXPECT_TRUE(d.conts[1].finished);
}

TEST(CkptIo, TruncationAtEveryPrefixIsRejected) {
  std::vector<std::byte> buf = encodeSnapshot(sampleSnapshot());
  // Every proper prefix must decode to a CkptError — header, mid-record,
  // mid-checksum, and missing-trailer cuts alike.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    std::vector<std::byte> torn(buf.begin(),
                                buf.begin() + static_cast<long>(n));
    EXPECT_THROW(decodeSnapshot(torn), CkptError) << "prefix " << n;
  }
}

TEST(CkptIo, EveryBitFlipIsRejected) {
  const std::vector<std::byte> good = encodeSnapshot(sampleSnapshot());
  Snapshot orig = decodeSnapshot(good);
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    std::vector<std::byte> bad = good;
    bad[pos] ^= std::byte{0x10};
    // Most flips must throw; any that decodes must decode to the
    // original content (a flip confined to dead padding), never to
    // silently different state.
    try {
      Snapshot d = decodeSnapshot(bad);
      EXPECT_EQ(d.tables, orig.tables) << "flip at " << pos;
      EXPECT_EQ(d.fabric, orig.fabric) << "flip at " << pos;
    } catch (const CkptError&) {
      // expected for virtually every position
    }
  }
}

TEST(CkptIo, VersionMismatchIsRejected) {
  std::vector<std::byte> buf = encodeSnapshot(sampleSnapshot());
  // Layout: 8-byte magic, then the u32 version little-endian.
  buf[8] = std::byte{static_cast<unsigned char>(kSnapshotVersion + 1)};
  EXPECT_THROW(decodeSnapshot(buf), CkptError);
}

TEST(CkptIo, BadMagicIsRejected) {
  std::vector<std::byte> buf = encodeSnapshot(sampleSnapshot());
  buf[0] = std::byte{'Y'};
  EXPECT_THROW(decodeSnapshot(buf), CkptError);
}

TEST(CkptIo, FileRoundTripAndMissingFile) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "xdp_ckpt_io_files";
  fs::create_directories(dir);
  const std::string path = (dir / "snap.xdpckpt").string();
  std::vector<std::byte> buf = encodeSnapshot(sampleSnapshot());
  saveSnapshotFile(path, buf);
  EXPECT_EQ(loadSnapshotFile(path), buf);
  EXPECT_THROW(loadSnapshotFile((dir / "absent.xdpckpt").string()),
               CkptError);
  fs::remove_all(dir);
}

TEST(CkptStore, ServesNewestGoodSnapshot) {
  CheckpointStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_THROW(store.loadLatestGood(), CkptError);
  store.add(sampleSnapshot(1));
  store.add(sampleSnapshot(2));
  store.add(sampleSnapshot(3));  // evicts 1 (2-deep ring)
  Snapshot got = store.loadLatestGood();
  EXPECT_EQ(got.captureStep, 3u);
  EXPECT_EQ(store.stats().snapshots, 3u);
  EXPECT_GT(store.stats().lastBytes, 0u);
}

TEST(CkptStore, FallsBackToPreviousGoodSnapshotOnDiskCorruption) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "xdp_ckpt_store_fallback";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    CheckpointStore store(dir.string());
    store.add(sampleSnapshot(1));
    store.add(sampleSnapshot(2));
  }
  // Flip a byte in the newest on-disk snapshot (highest sequence).
  fs::path newest;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (newest.empty() || e.path().filename() > newest.filename())
      newest = e.path();
  }
  ASSERT_FALSE(newest.empty());
  {
    std::fstream f(newest,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);
    char c = 0;
    f.seekg(24);
    f.get(c);
    c = static_cast<char>(c ^ 0x40);
    f.seekp(24);
    f.put(c);
  }
  // Adoption verifies each file: the torn newest one is skipped (and
  // counted as a fallback), leaving the previous good snapshot in charge.
  CheckpointStore reopened(dir.string());
  EXPECT_EQ(reopened.adoptFromDir(), 1);
  Snapshot got = reopened.loadLatestGood();
  EXPECT_EQ(got.captureStep, 1u) << "should fall back past the torn file";
  EXPECT_GE(reopened.stats().fallbacks, 1u);
  fs::remove_all(dir);
}

TEST(CkptStore, AllSnapshotsCorruptRaisesCkptError) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "xdp_ckpt_store_allbad";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    CheckpointStore store(dir.string());
    store.add(sampleSnapshot(1));
    store.add(sampleSnapshot(2));
  }
  for (const auto& e : fs::directory_iterator(dir)) {
    std::fstream f(e.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);
    f.put('\x7f');
  }
  CheckpointStore reopened(dir.string());
  reopened.adoptFromDir();
  EXPECT_THROW(reopened.loadLatestGood(), CkptError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace xdp::ckpt
