// Owner-computes lowering with *multiple* remote operands per assignment:
// each distinct rhs reference gets its own temporary, send and linked
// receive; duplicated references share one transfer; lhs-identical
// references stay local. The paper's section 2.2 shows the one-operand
// case; these pin the general rule.
#include <gtest/gtest.h>

#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"

namespace xdp::opt {
namespace {

using interp::Interpreter;
using sec::Index;
using sec::Section;
using sec::Triplet;

struct TriCfg {
  Index n = 24;
  int nprocs = 4;
  dist::Distribution dA, dB, dC;
  std::uint64_t seed = 5;
};

il::Program buildTriple(const TriCfg& cfg) {
  // do i: A[i] = B[i] * C[i] + B[i]
  il::Program prog;
  prog.nprocs = cfg.nprocs;
  Section g{Triplet(1, cfg.n)};
  prog.addArray({"A", rt::ElemType::F64, g, cfg.dA, {}});
  prog.addArray({"B", rt::ElemType::F64, g, cfg.dB, {}});
  prog.addArray({"C", rt::ElemType::F64, g, cfg.dC, {}});
  il::ExprPtr i = il::scalar("i");
  auto ai = il::secPoint({i});
  auto rhs = il::add(il::mul(il::elem(1, ai), il::elem(2, ai)),
                     il::elem(1, ai));  // B[i]*C[i] + B[i]
  // Fill by whole-array sections: the fill kernel writes the owned parts,
  // which works even for fragmented BLOCK-CYCLIC partitions where
  // [mypart] is not a single section.
  auto whole = il::secLit(
      {il::TripletExpr{il::intConst(1), il::intConst(cfg.n), {}}});
  prog.body = il::block({
      il::kernel("fill", {{0, whole}, {1, whole}, {2, whole}}),
      il::forLoop("i", il::intConst(1), il::intConst(cfg.n),
                  il::block({il::elemAssign(0, ai, rhs)})),
  });
  return prog;
}

double expected(const TriCfg& cfg, Index i) {
  sec::Point pt{i};
  double b = apps::cellValueAt(cfg.seed, 1, pt);
  double c = apps::cellValueAt(cfg.seed, 2, pt);
  return b * c + b;
}

void verify(const il::Program& prog, const TriCfg& cfg,
            net::NetStats* netOut = nullptr) {
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  Interpreter in(prog, opts);
  apps::registerFillKernel(in, cfg.seed);
  in.run();
  auto vals = apps::gatherF64(in.runtime(), prog.findSymbol("A"),
                              Section{Triplet(1, cfg.n)});
  for (Index i = 1; i <= cfg.n; ++i)
    ASSERT_DOUBLE_EQ(vals[static_cast<std::size_t>(i - 1)],
                     expected(cfg, i))
        << "element " << i;
  if (netOut) *netOut = in.runtime().fabric().totalStats();
}

TriCfg allMisaligned() {
  TriCfg cfg;
  Section g{Triplet(1, cfg.n)};
  cfg.dA = dist::Distribution(g, {dist::DimSpec::block(4)});
  cfg.dB = dist::Distribution(g, {dist::DimSpec::cyclic(4)});
  cfg.dC = dist::Distribution(g, {dist::DimSpec::block(2)});
  return cfg;
}

TEST(MultiRef, LoweredHasOneTempPerDistinctOperand) {
  TriCfg cfg = allMisaligned();
  il::Program lowered = lowerOwnerComputes(buildTriple(cfg));
  // B appears twice in the rhs but is transferred once; C once.
  EXPECT_NE(lowered.findSymbol("T0"), -1);
  EXPECT_NE(lowered.findSymbol("T1"), -1);
  EXPECT_EQ(lowered.findSymbol("T2"), -1);
  std::string text = il::printProgram(lowered);
  EXPECT_NE(text.find("iown(B[i]) : {"), std::string::npos);
  EXPECT_NE(text.find("iown(C[i]) : {"), std::string::npos);
  // The duplicated B[i] collapsed onto one temporary.
  EXPECT_NE(text.find("(T0[mypid] * T1[mypid]) + T0[mypid]"),
            std::string::npos);
  net::NetStats net;
  verify(lowered, cfg, &net);
  EXPECT_EQ(net.messagesSent, 2u * static_cast<unsigned>(cfg.n));
}

TEST(MultiRef, RtePrunesOnlyTheAlignedOperand) {
  TriCfg cfg = allMisaligned();
  Section g{Triplet(1, cfg.n)};
  cfg.dC = cfg.dA;  // C aligned with A; B stays cyclic
  il::Program lowered = lowerOwnerComputes(buildTriple(cfg));
  il::Program rte = deadArrayElimination(redundantTransferElimination(lowered));
  std::string text = il::printProgram(rte);
  EXPECT_EQ(text.find("C[i] ->"), std::string::npos);   // pruned
  EXPECT_NE(text.find("B[i] ->"), std::string::npos);   // kept
  net::NetStats net;
  verify(rte, cfg, &net);
  EXPECT_EQ(net.messagesSent, static_cast<unsigned>(cfg.n));  // only B moves
}

TEST(MultiRef, LhsOperandNeverTransfers) {
  // A[i] = A[i] + B[i]: the A[i] read is local by owner-computes.
  auto vcfg = apps::vecAddMisaligned(16, 4);
  il::Program lowered = lowerOwnerComputes(apps::buildVecAdd(vcfg));
  std::string text = il::printProgram(lowered);
  EXPECT_EQ(text.find("A[i] ->"), std::string::npos);
  EXPECT_EQ(lowered.findSymbol("T1"), -1);  // exactly one temp
}

TEST(MultiRef, DistributionMatrixSweep) {
  Section g{Triplet(1, 24)};
  std::vector<dist::Distribution> dists = {
      dist::Distribution(g, {dist::DimSpec::block(4)}),
      dist::Distribution(g, {dist::DimSpec::cyclic(4)}),
      dist::Distribution(g, {dist::DimSpec::blockCyclic(4, 3)}),
  };
  for (const auto& db : dists) {
    for (const auto& dc : dists) {
      TriCfg cfg;
      Section gg{Triplet(1, cfg.n)};
      cfg.dA = dist::Distribution(gg, {dist::DimSpec::block(4)});
      cfg.dB = db;
      cfg.dC = dc;
      il::Program lowered = lowerOwnerComputes(buildTriple(cfg));
      verify(lowered, cfg);
      il::Program pruned =
          deadArrayElimination(redundantTransferElimination(lowered));
      verify(pruned, cfg);
      il::Program bound = commBinding(pruned);
      net::NetStats net;
      verify(bound, cfg, &net);
      EXPECT_EQ(net.rendezvousSends, 0u);
    }
  }
}

}  // namespace
}  // namespace xdp::opt
