// Property tests for the static cost model: over random owner-computes
// programs (random BLOCK/CYCLIC/CYCLIC(b) distributions, random affine
// rhs over several arrays — a lean cousin of test_pipeline_fuzz), the
// model's totals must be *bit-exact* against the fabric's NetStats
// counters whenever the analysis claims exactness, on both execution
// backends — and the placement lower bound must never exceed the bytes
// any placement actually moved. One false byte in either direction fails
// the case with the seed and program printed.
#include <gtest/gtest.h>

#include <string>

#include "xdp/analysis/cost.hpp"
#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::analysis {
namespace {

using interp::Backend;
using interp::Interpreter;
using sec::Index;
using sec::Section;
using sec::Triplet;

struct FuzzCase {
  Index n = 0;
  int nprocs = 0;
  std::uint64_t seed = 0;
  std::vector<dist::Distribution> dists;  // one per array (lhs first)
  std::vector<int> rhsSyms;               // arrays read at [i]
};

dist::Distribution randomDist(Rng& rng, const Section& g, int nprocs) {
  switch (rng.below(3)) {
    case 0:
      return dist::Distribution(g, {dist::DimSpec::block(nprocs)});
    case 1:
      return dist::Distribution(g, {dist::DimSpec::cyclic(nprocs)});
    default:
      return dist::Distribution(
          g, {dist::DimSpec::blockCyclic(
                 nprocs, static_cast<Index>(rng.range(1, 4)))});
  }
}

FuzzCase randomCase(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase fc;
  fc.seed = seed;
  fc.n = rng.range(8, 40);
  fc.nprocs = static_cast<int>(rng.range(2, 4));
  Section g{Triplet(1, fc.n)};
  const int nArrays = static_cast<int>(rng.range(2, 4));
  for (int a = 0; a < nArrays; ++a)
    fc.dists.push_back(randomDist(rng, g, fc.nprocs));
  const int nTerms = static_cast<int>(rng.range(1, 3));
  for (int t = 0; t < nTerms; ++t)
    fc.rhsSyms.push_back(
        static_cast<int>(rng.below(static_cast<std::uint64_t>(nArrays))));
  return fc;
}

il::Program buildCase(const FuzzCase& fc) {
  il::Program prog;
  prog.nprocs = fc.nprocs;
  Section g{Triplet(1, fc.n)};
  for (std::size_t a = 0; a < fc.dists.size(); ++a)
    prog.addArray({"V" + std::to_string(a), rt::ElemType::F64, g,
                   fc.dists[a], {}});
  auto whole = il::secLit(
      {il::TripletExpr{il::intConst(1), il::intConst(fc.n), {}}});
  std::vector<std::pair<int, il::SectionExprPtr>> fills;
  for (std::size_t a = 0; a < fc.dists.size(); ++a)
    fills.emplace_back(static_cast<int>(a), whole);
  il::ExprPtr i = il::scalar("i");
  il::ExprPtr rhs = il::realConst(0.25);
  for (int sym : fc.rhsSyms)
    rhs = il::add(rhs, il::elem(sym, il::secPoint({il::scalar("i")})));
  std::vector<il::StmtPtr> body;
  body.push_back(il::kernel("fill", fills));
  body.push_back(
      il::forLoop("i", il::intConst(1), il::intConst(fc.n),
                  il::block({il::elemAssign(0, il::secPoint({i}), rhs)})));
  prog.body = il::block(std::move(body));
  return prog;
}

struct Measured {
  std::int64_t bytes = 0;
  std::int64_t messages = 0;
};

Measured runOn(const il::Program& prog, const FuzzCase& fc, Backend be) {
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  interp::InterpOptions io;
  io.backend = be;
  Interpreter in(prog, opts, io);
  apps::registerFillKernel(in, fc.seed);
  in.run();
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
  auto net = in.runtime().fabric().totalStats();
  Measured m;
  m.bytes = static_cast<std::int64_t>(net.bytesSent);
  m.messages = static_cast<std::int64_t>(net.messagesSent);
  return m;
}

void checkCase(const il::Program& lowered, const il::Program& pre,
               const FuzzCase& fc, const char* stage) {
  const CostReport r = analyzeCost(lowered, pre);
  const Measured tree = runOn(lowered, fc, Backend::TreeWalk);
  const Measured vm = runOn(lowered, fc, Backend::Bytecode);
  ASSERT_EQ(tree.bytes, vm.bytes)
      << stage << " seed " << fc.seed << ": backends diverge on bytes\n"
      << il::printProgram(lowered);
  ASSERT_EQ(tree.messages, vm.messages)
      << stage << " seed " << fc.seed << ": backends diverge on messages\n"
      << il::printProgram(lowered);
  if (r.exact) {
    EXPECT_EQ(r.bytesMoved, tree.bytes)
        << stage << " seed " << fc.seed << ": static bytes != NetStats\n"
        << il::printProgram(lowered);
    EXPECT_EQ(r.messages, tree.messages)
        << stage << " seed " << fc.seed << ": static msgs != NetStats\n"
        << il::printProgram(lowered);
  }
  // The lower bound is a bound on ANY placement, so in particular on
  // this one — measured traffic can never sit below it.
  EXPECT_LE(r.lowerBound(), tree.bytes)
      << stage << " seed " << fc.seed << ": lower bound above measured\n"
      << il::printProgram(lowered);
}

class CostFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CostFuzz, StaticModelMatchesNetStatsOnBothBackends) {
  for (std::uint64_t k = 0; k < 8; ++k) {
    FuzzCase fc = randomCase(GetParam() * 1000 + k);
    il::Program seq = buildCase(fc);
    il::Program lowered = opt::lowerOwnerComputes(seq);
    checkCase(lowered, seq, fc, "lowered");
    opt::PassManager pm;
    for (const opt::Pass& p : opt::standardPipeline()) pm.add(p.name, p.fn);
    il::Program full = pm.run(seq, nullptr);
    checkCase(full, seq, fc, "pipeline");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostFuzz,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace xdp::analysis
