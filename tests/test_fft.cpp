// fft1d correctness against the naive DFT, and round-trip properties.
#include <gtest/gtest.h>

#include "xdp/apps/fft.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::apps {
namespace {

std::vector<Complex> randomSignal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.real() - 0.5, rng.real() - 0.5);
  return v;
}

void expectNear(const std::vector<Complex>& a, const std::vector<Complex>& b,
                double tol) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(std::abs(a[i] - b[i]), 0.0, tol) << "index " << i;
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(isPow2(1));
  EXPECT_TRUE(isPow2(64));
  EXPECT_FALSE(isPow2(0));
  EXPECT_FALSE(isPow2(12));
}

TEST(Fft, RejectsNonPow2) {
  std::vector<Complex> v(12);
  EXPECT_THROW(fft1d(v), xdp::Error);
}

TEST(Fft, LengthOneIsIdentity) {
  std::vector<Complex> v{Complex(3.0, -1.0)};
  fft1d(v);
  EXPECT_EQ(v[0], Complex(3.0, -1.0));
}

TEST(Fft, KnownTransform) {
  // DFT of [1,1,1,1] = [4,0,0,0]; DFT of [1,-1,1,-1] = [0,0,4,0].
  std::vector<Complex> ones{1, 1, 1, 1};
  fft1d(ones);
  expectNear(ones, {Complex(4), Complex(0), Complex(0), Complex(0)}, 1e-12);
  std::vector<Complex> alt{1, -1, 1, -1};
  fft1d(alt);
  expectNear(alt, {Complex(0), Complex(0), Complex(4), Complex(0)}, 1e-12);
}

class FftVsDft : public ::testing::TestWithParam<int> {};

TEST_P(FftVsDft, MatchesNaiveDft) {
  const auto n = static_cast<std::size_t>(1 << GetParam());
  auto sig = randomSignal(n, 1000 + static_cast<std::uint64_t>(GetParam()));
  auto expect = naiveDft(sig);
  fft1d(sig);
  expectNear(sig, expect, 1e-9 * static_cast<double>(n));
}

TEST_P(FftVsDft, InverseRoundTrip) {
  const auto n = static_cast<std::size_t>(1 << GetParam());
  auto sig = randomSignal(n, 2000 + static_cast<std::uint64_t>(GetParam()));
  auto orig = sig;
  fft1d(sig);
  fft1d(sig, /*inverse=*/true);
  expectNear(sig, orig, 1e-12 * static_cast<double>(n));
}

TEST_P(FftVsDft, ParsevalHolds) {
  const auto n = static_cast<std::size_t>(1 << GetParam());
  auto sig = randomSignal(n, 3000 + static_cast<std::uint64_t>(GetParam()));
  double timeEnergy = 0;
  for (const auto& x : sig) timeEnergy += std::norm(x);
  fft1d(sig);
  double freqEnergy = 0;
  for (const auto& x : sig) freqEnergy += std::norm(x);
  EXPECT_NEAR(freqEnergy, timeEnergy * static_cast<double>(n),
              1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsDft, ::testing::Values(0, 1, 2, 3, 4, 5,
                                                            6, 7, 8));

}  // namespace
}  // namespace xdp::apps
