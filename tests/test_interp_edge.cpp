// Interpreter edge cases: destination resolution, empty-section transfer
// elision, loop semantics, i64 arrays, and error surfaces.
#include <gtest/gtest.h>

#include <limits>

#include "xdp/apps/programs.hpp"
#include "xdp/interp/interpreter.hpp"

namespace xdp::interp {
namespace {

using dist::DimSpec;
using dist::Distribution;
using il::ExprPtr;
using sec::Section;
using sec::Triplet;

rt::RuntimeOptions debug() {
  rt::RuntimeOptions o;
  o.debugChecks = true;
  return o;
}

il::Program base(int nprocs, Index n, il::StmtPtr body,
                 rt::ElemType type = rt::ElemType::F64) {
  il::Program prog;
  prog.nprocs = nprocs;
  Section g{Triplet(1, n)};
  prog.addArray({"A", type, g, Distribution(g, {DimSpec::block(nprocs)}), {}});
  prog.body = std::move(body);
  return prog;
}

TEST(InterpEdge, OwnerOfDestinationResolvesAtRuntime) {
  // Send bound to "owner of A[k]" where k is a loop variable.
  il::Program prog = base(
      4, 16,
      il::block({il::forLoop(
          "k", il::intConst(1), il::intConst(16),
          il::block({
              il::guarded(
                  il::iown(0, il::secPoint({il::scalar("k")})),
                  il::block({il::sendData(
                      0, il::secPoint({il::scalar("k")}),
                      il::DestSpec::ownerOf(
                          0, il::secPoint(
                                 {il::add(il::scalar("k"),
                                          il::intConst(0))})))})),
              il::guarded(
                  il::iown(0, il::secPoint({il::scalar("k")})),
                  il::block(
                      {il::recvData(0, il::secPoint({il::scalar("k")}), 0,
                                    il::secPoint({il::scalar("k")})),
                       il::awaitStmt(0, il::secPoint({il::scalar("k")}))})),
          }))}));
  Interpreter in(prog, debug());
  in.run();  // self-sends bound to the correct owner; all matched
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
  EXPECT_EQ(in.runtime().fabric().totalStats().directSends, 16u);
}

TEST(InterpEdge, OwnerOfSpanningProcessorsIsAnError) {
  il::Program prog = base(
      4, 16,
      il::block({il::guarded(
          il::bin(il::BinOp::Eq, il::mypid(), il::intConst(0)),
          il::block({il::sendData(
              0, il::secPoint({il::intConst(1)}),
              il::DestSpec::ownerOf(
                  0, il::secRange1(il::intConst(1), il::intConst(16))))}))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::Error);
}

TEST(InterpEdge, EmptySectionTransfersAreElided) {
  // Intersections that come out empty produce no traffic and no errors.
  auto emptySec = il::secIntersect(
      il::secRange1(il::intConst(1), il::intConst(4)),
      il::secRange1(il::intConst(10), il::intConst(12)));
  il::Program prog =
      base(2, 16,
           il::block({il::sendData(0, emptySec),
                      il::recvData(0, emptySec, 0, emptySec),
                      il::sendOwn(0, emptySec, true),
                      il::recvOwn(0, emptySec, true),
                      il::awaitStmt(0, emptySec)}));
  Interpreter in(prog, debug());
  in.run();
  EXPECT_EQ(in.runtime().fabric().totalStats().messagesSent, 0u);
}

TEST(InterpEdge, LoopBoundsEvaluatedOnEntry) {
  // Changing `n` inside the loop must not change the trip count.
  il::Program prog = base(
      1, 4,
      il::block({
          il::scalarAssign("n", il::intConst(3)),
          il::scalarAssign("count", il::intConst(0)),
          il::forLoop("i", il::intConst(1), il::scalar("n"),
                      il::block({
                          il::scalarAssign("n", il::intConst(100)),
                          il::scalarAssign(
                              "count",
                              il::add(il::scalar("count"), il::intConst(1))),
                      })),
          il::elemAssign(0, il::secPoint({il::intConst(1)}),
                         il::scalar("count")),
      }));
  Interpreter in(prog, debug());
  in.run();
  auto vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, 4)});
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
}

TEST(InterpEdge, StridedLoopVisitsEveryStepOnce) {
  il::Program prog = base(
      1, 4,
      il::block({
          il::scalarAssign("acc", il::intConst(0)),
          il::forLoop("i", il::intConst(1), il::intConst(10),
                      il::block({il::scalarAssign(
                          "acc", il::add(il::scalar("acc"), il::scalar("i")))}),
                      il::intConst(3)),
          il::elemAssign(0, il::secPoint({il::intConst(1)}),
                         il::scalar("acc")),
      }));
  Interpreter in(prog, debug());
  in.run();
  auto vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, 4)});
  EXPECT_DOUBLE_EQ(vals[0], 1 + 4 + 7 + 10);
}

TEST(InterpEdge, I64ArraysRoundAssignedReals) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(0, il::secPoint({il::intConst(1)}),
                                il::realConst(2.6))}),
      rt::ElemType::I64);
  Interpreter in(prog, debug());
  in.run();
  rt::Proc p(in.runtime(), 0);
  // llround(2.6) == 3.
  std::vector<std::int64_t> v =
      in.runtime().table(0).iown(0, Section{Triplet(1)})
          ? [&] {
              std::vector<std::int64_t> out(1);
              in.runtime().table(0).readElems(
                  0, Section{Triplet(1)},
                  reinterpret_cast<std::byte*>(out.data()));
              return out;
            }()
          : std::vector<std::int64_t>{};
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 3);
}

TEST(InterpEdge, ComplexElementAccessViaExprIsAnError) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(0, il::secPoint({il::intConst(1)}),
                                il::realConst(1.0))}),
      rt::ElemType::C128);
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::Error);  // c128 needs kernels
}

TEST(InterpEdge, NonIntegralIndexIsAnError) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(0, il::secPoint({il::realConst(1.5)}),
                                il::realConst(0.0))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::Error);
}

TEST(InterpEdge, OutOfRangeIndexIsAnError) {
  // Doubles beyond int64 range must be rejected, not fed to llround (UB).
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(0, il::secPoint({il::realConst(1e300)}),
                                il::realConst(0.0))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::UsageError);
}

TEST(InterpEdge, NonFiniteIndexIsAnError) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(
          0,
          il::secPoint({il::bin(il::BinOp::Div, il::realConst(0.0),
                                il::realConst(0.0))}),  // NaN
          il::realConst(0.0))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::UsageError);
}

// --- arithmetic edge semantics (identical on both backends) --------------
//
// Signed semantics are defined once in xdp/support/arith.hpp: Add/Sub/
// Mul/Neg wrap modulo 2^64; Div/Mod trap on divisor zero AND on
// INT64_MIN / -1 (the one overflowing division) — previously signed-
// overflow UB in the C++ `/` and `%` the interpreter used directly.

class ArithEdge : public ::testing::TestWithParam<Backend> {
 protected:
  InterpOptions iopts() {
    InterpOptions io;
    io.backend = GetParam();
    return io;
  }
  std::int64_t runReadI64(il::Program prog) {
    Interpreter in(std::move(prog), debug(), iopts());
    in.run();
    std::int64_t out = 0;
    in.runtime().table(0).readElems(0, Section{Triplet(1)},
                                    reinterpret_cast<std::byte*>(&out));
    return out;
  }
  double runReadF64(il::Program prog) {
    Interpreter in(std::move(prog), debug(), iopts());
    in.run();
    return apps::gatherF64(in.runtime(), 0, Section{Triplet(1, 4)})[0];
  }
};

constexpr Index kMin = std::numeric_limits<std::int64_t>::min();
constexpr Index kMax = std::numeric_limits<std::int64_t>::max();

TEST_P(ArithEdge, DivOverflowRaisesUsageError) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(
          0, il::secPoint({il::intConst(1)}),
          il::bin(il::BinOp::Div, il::intConst(kMin), il::intConst(-1)))}));
  Interpreter in(prog, debug(), iopts());
  EXPECT_THROW(in.run(), xdp::UsageError);
}

TEST_P(ArithEdge, ModOverflowRaisesUsageError) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(
          0, il::secPoint({il::intConst(1)}),
          il::bin(il::BinOp::Mod, il::intConst(kMin), il::intConst(-1)))}));
  Interpreter in(prog, debug(), iopts());
  EXPECT_THROW(in.run(), xdp::UsageError);
}

TEST_P(ArithEdge, DivModByZeroRaiseUsageError) {
  for (il::BinOp op : {il::BinOp::Div, il::BinOp::Mod}) {
    il::Program prog = base(
        1, 4,
        il::block({il::elemAssign(
            0, il::secPoint({il::intConst(1)}),
            il::bin(op, il::intConst(7), il::intConst(0)))}));
    Interpreter in(prog, debug(), iopts());
    EXPECT_THROW(in.run(), xdp::UsageError);
  }
}

TEST_P(ArithEdge, AddSubMulNegWrapModulo2Pow64) {
  auto i64prog = [](il::ExprPtr rhs) {
    return base(1, 4,
                il::block({il::elemAssign(0, il::secPoint({il::intConst(1)}),
                                          std::move(rhs))}),
                rt::ElemType::I64);
  };
  // INT64_MIN is exactly representable as a double, so the f64-mediated
  // i64 store path preserves it bit-for-bit.
  EXPECT_EQ(runReadI64(i64prog(il::add(il::intConst(kMax), il::intConst(1)))),
            kMin);
  // kMin - 1024 wraps to 2^63 - 1024, a representable double (the f64
  // spacing in [2^62, 2^63) is exactly 1024); kMax itself is not.
  EXPECT_EQ(
      runReadI64(i64prog(il::sub(il::intConst(kMin), il::intConst(1024)))),
      kMax - 1023);
  EXPECT_EQ(runReadI64(
                i64prog(il::mul(il::intConst(kMin), il::intConst(-1)))),
            kMin);
  EXPECT_EQ(runReadI64(i64prog(il::neg(il::intConst(kMin)))), kMin);
}

TEST_P(ArithEdge, LoopNearInt64MaxTerminates) {
  // `i + step` overflows past INT64_MAX on the last iteration; the
  // termination test must decide on remaining distance, not on i + step.
  il::Program prog = base(
      1, 4,
      il::block({
          il::scalarAssign("c", il::intConst(0)),
          il::forLoop("i", il::intConst(kMax - 3), il::intConst(kMax),
                      il::block({il::scalarAssign(
                          "c", il::add(il::scalar("c"), il::intConst(1)))}),
                      il::intConst(2)),
          il::elemAssign(0, il::secPoint({il::intConst(1)}), il::scalar("c")),
      }));
  EXPECT_DOUBLE_EQ(runReadF64(std::move(prog)), 2.0);  // i = MAX-3, MAX-1
}

TEST_P(ArithEdge, LoopAtInt64MaxRunsOnce) {
  il::Program prog = base(
      1, 4,
      il::block({
          il::scalarAssign("c", il::intConst(0)),
          il::forLoop("i", il::intConst(kMax), il::intConst(kMax),
                      il::block({il::scalarAssign(
                          "c", il::add(il::scalar("c"), il::intConst(1)))})),
          il::elemAssign(0, il::secPoint({il::intConst(1)}), il::scalar("c")),
      }));
  EXPECT_DOUBLE_EQ(runReadF64(std::move(prog)), 1.0);
}

TEST_P(ArithEdge, TrappingDivisorUnderFalseGuardNeverEvaluated) {
  // The statically-false guard must skip the division on every schedule
  // (naive, range-split, bytecode) — a trap here would be a fault the
  // original program does not have.
  il::Program prog = base(
      2, 8,
      il::block({il::forLoop(
          "i", il::intConst(1), il::intConst(8),
          il::block({il::guarded(
              il::bin(il::BinOp::Gt, il::intConst(1), il::intConst(2)),
              il::block({il::elemAssign(
                  0, il::secPoint({il::scalar("i")}),
                  il::bin(il::BinOp::Div, il::intConst(1),
                          il::intConst(0)))}))}))}));
  Interpreter in(prog, debug(), iopts());
  EXPECT_NO_THROW(in.run());
  EXPECT_EQ(in.totalStats().rulesTrue, 0u);
}

TEST_P(ArithEdge, ZeroTripLoopSkipsTrappingBody) {
  il::Program prog = base(
      1, 4,
      il::block({il::forLoop(
          "i", il::intConst(5), il::intConst(2),
          il::block({il::elemAssign(
              0, il::secPoint({il::intConst(1)}),
              il::bin(il::BinOp::Div, il::intConst(1), il::intConst(0)))}))}));
  Interpreter in(prog, debug(), iopts());
  EXPECT_NO_THROW(in.run());
  EXPECT_EQ(in.totalStats().loopIterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ArithEdge,
                         ::testing::Values(Backend::TreeWalk,
                                           Backend::Bytecode));

TEST(InterpEdge, DivisionInGuardSubscriptBlocksRangeSplit) {
  // isPureInvariant must refuse Div/Mod: hoisting one to split time would
  // move a potential trap onto a schedule position the naive schedule
  // doesn't have. A division in the guard subscript therefore forces the
  // guard-per-iteration path (correct result, zero splits).
  auto build = [](il::ExprPtr offset) {
    return base(
        2, 16,
        il::block({il::forLoop(
            "i", il::intConst(1), il::intConst(14),
            il::block({il::guarded(
                il::iown(0, il::secPoint({il::add(il::scalar("i"),
                                                  std::move(offset))})),
                il::block({il::elemAssign(
                    0,
                    il::secPoint({il::add(il::scalar("i"), il::intConst(2))}),
                    il::intConst(1))}))}))}));
  };
  // Positive control: an affine subscript does range-split.
  Interpreter split(build(il::intConst(2)), debug());
  split.run();
  EXPECT_GT(split.totalStats().rangeSplits, 0u);
  // Same subscript value via a (non-trapping) division: no split.
  Interpreter noSplit(
      build(il::bin(il::BinOp::Div, il::intConst(6), il::intConst(3))),
      debug());
  noSplit.run();
  EXPECT_EQ(noSplit.totalStats().rangeSplits, 0u);
  EXPECT_EQ(noSplit.totalStats().rulesTrue, split.totalStats().rulesTrue);
  auto a = apps::gatherF64(split.runtime(), 0, Section{Triplet(1, 16)});
  auto b = apps::gatherF64(noSplit.runtime(), 0, Section{Triplet(1, 16)});
  EXPECT_EQ(a, b);
}

TEST(InterpEdge, StatsResetWorks) {
  il::Program prog = base(
      2, 8,
      il::block({il::guarded(il::iown(0, il::secPoint({il::intConst(1)})),
                             il::block({}))}));
  Interpreter in(prog, debug());
  in.run();
  EXPECT_GT(in.totalStats().rulesEvaluated, 0u);
  in.resetStats();
  EXPECT_EQ(in.totalStats().rulesEvaluated, 0u);
}

}  // namespace
}  // namespace xdp::interp
