// Interpreter edge cases: destination resolution, empty-section transfer
// elision, loop semantics, i64 arrays, and error surfaces.
#include <gtest/gtest.h>

#include "xdp/apps/programs.hpp"
#include "xdp/interp/interpreter.hpp"

namespace xdp::interp {
namespace {

using dist::DimSpec;
using dist::Distribution;
using il::ExprPtr;
using sec::Section;
using sec::Triplet;

rt::RuntimeOptions debug() {
  rt::RuntimeOptions o;
  o.debugChecks = true;
  return o;
}

il::Program base(int nprocs, Index n, il::StmtPtr body,
                 rt::ElemType type = rt::ElemType::F64) {
  il::Program prog;
  prog.nprocs = nprocs;
  Section g{Triplet(1, n)};
  prog.addArray({"A", type, g, Distribution(g, {DimSpec::block(nprocs)}), {}});
  prog.body = std::move(body);
  return prog;
}

TEST(InterpEdge, OwnerOfDestinationResolvesAtRuntime) {
  // Send bound to "owner of A[k]" where k is a loop variable.
  il::Program prog = base(
      4, 16,
      il::block({il::forLoop(
          "k", il::intConst(1), il::intConst(16),
          il::block({
              il::guarded(
                  il::iown(0, il::secPoint({il::scalar("k")})),
                  il::block({il::sendData(
                      0, il::secPoint({il::scalar("k")}),
                      il::DestSpec::ownerOf(
                          0, il::secPoint(
                                 {il::add(il::scalar("k"),
                                          il::intConst(0))})))})),
              il::guarded(
                  il::iown(0, il::secPoint({il::scalar("k")})),
                  il::block(
                      {il::recvData(0, il::secPoint({il::scalar("k")}), 0,
                                    il::secPoint({il::scalar("k")})),
                       il::awaitStmt(0, il::secPoint({il::scalar("k")}))})),
          }))}));
  Interpreter in(prog, debug());
  in.run();  // self-sends bound to the correct owner; all matched
  EXPECT_EQ(in.runtime().fabric().undeliveredCount(), 0u);
  EXPECT_EQ(in.runtime().fabric().totalStats().directSends, 16u);
}

TEST(InterpEdge, OwnerOfSpanningProcessorsIsAnError) {
  il::Program prog = base(
      4, 16,
      il::block({il::guarded(
          il::bin(il::BinOp::Eq, il::mypid(), il::intConst(0)),
          il::block({il::sendData(
              0, il::secPoint({il::intConst(1)}),
              il::DestSpec::ownerOf(
                  0, il::secRange1(il::intConst(1), il::intConst(16))))}))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::Error);
}

TEST(InterpEdge, EmptySectionTransfersAreElided) {
  // Intersections that come out empty produce no traffic and no errors.
  auto emptySec = il::secIntersect(
      il::secRange1(il::intConst(1), il::intConst(4)),
      il::secRange1(il::intConst(10), il::intConst(12)));
  il::Program prog =
      base(2, 16,
           il::block({il::sendData(0, emptySec),
                      il::recvData(0, emptySec, 0, emptySec),
                      il::sendOwn(0, emptySec, true),
                      il::recvOwn(0, emptySec, true),
                      il::awaitStmt(0, emptySec)}));
  Interpreter in(prog, debug());
  in.run();
  EXPECT_EQ(in.runtime().fabric().totalStats().messagesSent, 0u);
}

TEST(InterpEdge, LoopBoundsEvaluatedOnEntry) {
  // Changing `n` inside the loop must not change the trip count.
  il::Program prog = base(
      1, 4,
      il::block({
          il::scalarAssign("n", il::intConst(3)),
          il::scalarAssign("count", il::intConst(0)),
          il::forLoop("i", il::intConst(1), il::scalar("n"),
                      il::block({
                          il::scalarAssign("n", il::intConst(100)),
                          il::scalarAssign(
                              "count",
                              il::add(il::scalar("count"), il::intConst(1))),
                      })),
          il::elemAssign(0, il::secPoint({il::intConst(1)}),
                         il::scalar("count")),
      }));
  Interpreter in(prog, debug());
  in.run();
  auto vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, 4)});
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
}

TEST(InterpEdge, StridedLoopVisitsEveryStepOnce) {
  il::Program prog = base(
      1, 4,
      il::block({
          il::scalarAssign("acc", il::intConst(0)),
          il::forLoop("i", il::intConst(1), il::intConst(10),
                      il::block({il::scalarAssign(
                          "acc", il::add(il::scalar("acc"), il::scalar("i")))}),
                      il::intConst(3)),
          il::elemAssign(0, il::secPoint({il::intConst(1)}),
                         il::scalar("acc")),
      }));
  Interpreter in(prog, debug());
  in.run();
  auto vals = apps::gatherF64(in.runtime(), 0, Section{Triplet(1, 4)});
  EXPECT_DOUBLE_EQ(vals[0], 1 + 4 + 7 + 10);
}

TEST(InterpEdge, I64ArraysRoundAssignedReals) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(0, il::secPoint({il::intConst(1)}),
                                il::realConst(2.6))}),
      rt::ElemType::I64);
  Interpreter in(prog, debug());
  in.run();
  rt::Proc p(in.runtime(), 0);
  // llround(2.6) == 3.
  std::vector<std::int64_t> v =
      in.runtime().table(0).iown(0, Section{Triplet(1)})
          ? [&] {
              std::vector<std::int64_t> out(1);
              in.runtime().table(0).readElems(
                  0, Section{Triplet(1)},
                  reinterpret_cast<std::byte*>(out.data()));
              return out;
            }()
          : std::vector<std::int64_t>{};
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 3);
}

TEST(InterpEdge, ComplexElementAccessViaExprIsAnError) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(0, il::secPoint({il::intConst(1)}),
                                il::realConst(1.0))}),
      rt::ElemType::C128);
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::Error);  // c128 needs kernels
}

TEST(InterpEdge, NonIntegralIndexIsAnError) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(0, il::secPoint({il::realConst(1.5)}),
                                il::realConst(0.0))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::Error);
}

TEST(InterpEdge, OutOfRangeIndexIsAnError) {
  // Doubles beyond int64 range must be rejected, not fed to llround (UB).
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(0, il::secPoint({il::realConst(1e300)}),
                                il::realConst(0.0))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::UsageError);
}

TEST(InterpEdge, NonFiniteIndexIsAnError) {
  il::Program prog = base(
      1, 4,
      il::block({il::elemAssign(
          0,
          il::secPoint({il::bin(il::BinOp::Div, il::realConst(0.0),
                                il::realConst(0.0))}),  // NaN
          il::realConst(0.0))}));
  Interpreter in(prog, debug());
  EXPECT_THROW(in.run(), xdp::UsageError);
}

TEST(InterpEdge, StatsResetWorks) {
  il::Program prog = base(
      2, 8,
      il::block({il::guarded(il::iown(0, il::secPoint({il::intConst(1)})),
                             il::block({}))}));
  Interpreter in(prog, debug());
  in.run();
  EXPECT_GT(in.totalStats().rulesEvaluated, 0u);
  in.resetStats();
  EXPECT_EQ(in.totalStats().rulesEvaluated, 0u);
}

}  // namespace
}  // namespace xdp::interp
