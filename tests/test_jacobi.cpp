// Jacobi stencil on the XDP runtime: both halo plans must match the
// sequential reference bit-for-bit, and the vectorized plan must move the
// same bytes in far fewer messages.
#include <gtest/gtest.h>

#include "xdp/apps/jacobi.hpp"

namespace xdp::apps {
namespace {

void expectMatchesReference(const JacobiConfig& cfg) {
  auto got = runJacobi(cfg);
  auto expect = jacobiReference(cfg);
  ASSERT_EQ(got.grid.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_DOUBLE_EQ(got.grid[i], expect[i]) << "cell " << i;
}

TEST(Jacobi, RowSectionsMatchesReference) {
  JacobiConfig cfg;
  cfg.rows = 24;
  cfg.cols = 17;
  cfg.nprocs = 4;
  cfg.iterations = 8;
  cfg.plan = HaloPlan::RowSections;
  expectMatchesReference(cfg);
}

TEST(Jacobi, ElementWiseMatchesReference) {
  JacobiConfig cfg;
  cfg.rows = 16;
  cfg.cols = 9;
  cfg.nprocs = 4;
  cfg.iterations = 5;
  cfg.plan = HaloPlan::ElementWise;
  expectMatchesReference(cfg);
}

TEST(Jacobi, UnboundRendezvousMatchesReference) {
  JacobiConfig cfg;
  cfg.rows = 16;
  cfg.cols = 9;
  cfg.nprocs = 4;
  cfg.iterations = 4;
  cfg.bindDestinations = false;  // all halo traffic through the matcher
  expectMatchesReference(cfg);
}

TEST(Jacobi, SingleProcessorNeedsNoMessages) {
  JacobiConfig cfg;
  cfg.rows = 8;
  cfg.cols = 8;
  cfg.nprocs = 1;
  cfg.iterations = 3;
  auto got = runJacobi(cfg);
  EXPECT_EQ(got.net.messagesSent, 0u);
  auto expect = jacobiReference(cfg);
  for (std::size_t i = 0; i < expect.size(); ++i)
    ASSERT_DOUBLE_EQ(got.grid[i], expect[i]);
}

TEST(Jacobi, UnevenRowCount) {
  JacobiConfig cfg;
  cfg.rows = 19;  // blocks of 5,5,5,4
  cfg.cols = 11;
  cfg.nprocs = 4;
  cfg.iterations = 6;
  expectMatchesReference(cfg);
}

TEST(Jacobi, OddIterationCountEndsInSecondBuffer) {
  JacobiConfig cfg;
  cfg.rows = 12;
  cfg.cols = 8;
  cfg.nprocs = 2;
  cfg.iterations = 7;
  expectMatchesReference(cfg);
}

TEST(Jacobi, VectorizedPlanMovesSameBytesFewerMessages) {
  JacobiConfig base;
  base.rows = 24;
  base.cols = 32;
  base.nprocs = 4;
  base.iterations = 4;
  JacobiConfig elem = base;
  elem.plan = HaloPlan::ElementWise;
  JacobiConfig rows = base;
  rows.plan = HaloPlan::RowSections;
  auto re = runJacobi(elem);
  auto rr = runJacobi(rows);
  EXPECT_EQ(re.net.bytesSent, rr.net.bytesSent);
  // 6 boundary exchanges per iteration; element-wise pays cols messages
  // per exchange.
  EXPECT_EQ(rr.net.messagesSent, 6u * 4u);
  EXPECT_EQ(re.net.messagesSent, 6u * 4u * 32u);
  // The alpha term makes the vectorized plan faster in modeled time.
  EXPECT_LT(rr.makespan, re.makespan);
}

TEST(Jacobi, BindingReducesModeledTime) {
  JacobiConfig bound;
  bound.rows = 24;
  bound.cols = 16;
  bound.nprocs = 4;
  bound.iterations = 4;
  JacobiConfig unbound = bound;
  unbound.bindDestinations = false;
  auto rb = runJacobi(bound);
  auto ru = runJacobi(unbound);
  EXPECT_EQ(rb.net.rendezvousSends, 0u);
  EXPECT_GT(ru.net.rendezvousSends, 0u);
  EXPECT_LT(rb.makespan, ru.makespan);
}

TEST(Jacobi, ProcsSweep) {
  for (int P : {2, 3, 6}) {
    JacobiConfig cfg;
    cfg.rows = 18;
    cfg.cols = 7;
    cfg.nprocs = P;
    cfg.iterations = 5;
    expectMatchesReference(cfg);
  }
}

}  // namespace
}  // namespace xdp::apps
