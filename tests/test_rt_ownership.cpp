// Ownership-transfer semantics (the paper's novel feature): "=>", "-=>",
// "<=", "<=-", segment splitting, storage reuse, redistribution, and the
// load-balancing pattern of section 2.7.
#include <gtest/gtest.h>

#include <atomic>

#include "xdp/rt/proc.hpp"

namespace xdp::rt {
namespace {

using dist::DimSpec;
using sec::Triplet;

RuntimeOptions debug() {
  RuntimeOptions o;
  o.debugChecks = true;
  return o;
}

TEST(RtOwnership, OwnershipAndValueMovesBetweenProcs) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 8)};
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    Section left{Triplet(1, 4)};
    if (p.mypid() == 0) {
      std::vector<double> vals{1, 2, 3, 4};
      p.write<double>(A, left, vals);
      p.sendOwnership(A, left, /*withValue=*/true);  // A[1:4] -=>
      EXPECT_FALSE(p.iown(A, left));                 // relinquished
    } else {
      p.recvOwnership(A, left, /*withValue=*/true);  // A[1:4] <=-
      EXPECT_TRUE(p.iown(A, left));                  // owned (transitional)
      EXPECT_TRUE(p.await(A, left));
      auto vals = p.read<double>(A, left);
      EXPECT_EQ(vals, (std::vector<double>{1, 2, 3, 4}));
      // p1 now owns the whole array.
      EXPECT_TRUE(p.iown(A, Section{Triplet(1, 8)}));
    }
  });
}

TEST(RtOwnership, OwnershipOnlyTransferCarriesNoValue) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 4)};
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.fabric().resetStats();
  rt.run([&](Proc& p) {
    Section left{Triplet(1, 2)};
    if (p.mypid() == 0) {
      p.write<double>(A, left, std::vector<double>{7, 8});
      p.sendOwnership(A, left, /*withValue=*/false);  // A[1:2] =>
      EXPECT_FALSE(p.iown(A, left));
    } else {
      p.recvOwnership(A, left, /*withValue=*/false);  // A[1:2] <=
      EXPECT_TRUE(p.await(A, left));
      // Value did not travel: fresh storage is zero-initialized.
      auto vals = p.read<double>(A, left);
      EXPECT_EQ(vals, (std::vector<double>{0, 0}));
    }
  });
  // The ownership-only message carried zero payload bytes.
  EXPECT_EQ(rt.fabric().totalStats().bytesSent, 0u);
  EXPECT_EQ(rt.fabric().totalStats().ownershipTransfers, 1u);
}

TEST(RtOwnership, PartialTransferSplitsSegments) {
  // One processor owns [1:8] as a single segment; shipping [3:5] must
  // split the remainder into new accessible segments with values intact.
  Runtime rt(2, debug());
  Section g{Triplet(1, 8)};
  // All of A on p0 (BLOCK over 1 proc in a 2-proc machine).
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(1)}));
  rt.run([&](Proc& p) {
    Section mid{Triplet(3, 5)};
    if (p.mypid() == 0) {
      std::vector<double> vals{1, 2, 3, 4, 5, 6, 7, 8};
      p.write<double>(A, g, vals);
      p.sendOwnership(A, mid, true, std::vector<int>{1});
      EXPECT_FALSE(p.iown(A, mid));
      EXPECT_TRUE(p.iown(A, Section{Triplet(1, 2)}));
      EXPECT_TRUE(p.iown(A, Section{Triplet(6, 8)}));
      // Remainder values survived the split.
      EXPECT_EQ(p.read<double>(A, Section{Triplet(1, 2)}),
                (std::vector<double>{1, 2}));
      EXPECT_EQ(p.read<double>(A, Section{Triplet(6, 8)}),
                (std::vector<double>{6, 7, 8}));
      EXPECT_FALSE(p.iown(A, g));  // full array no longer covered
    } else {
      p.recvOwnership(A, mid, true);
      EXPECT_TRUE(p.await(A, mid));
      EXPECT_EQ(p.read<double>(A, mid), (std::vector<double>{3, 4, 5}));
    }
  });
}

TEST(RtOwnership, StorageIsReusedAfterTransferOut) {
  // Paper section 2.6: "when ownership of a section is transferred out of
  // a processor, the storage it had occupied can be reused".
  Runtime rt(2, debug());
  Section g{Triplet(1, 128)};
  int A = rt.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(1)}),
      SegmentShape::of({32}));  // 4 segments of 32 on p0
  rt.run([&](Proc& p) {
    Section half{Triplet(1, 64)};
    if (p.mypid() == 0) {
      // Ship two segments out; the freed storage must back the ownership
      // we reacquire afterwards, so the pool never grows.
      auto before = p.table().storageStats(A);
      p.sendOwnership(A, half, true, std::vector<int>{1});
      auto afterSend = p.table().storageStats(A);
      EXPECT_EQ(afterSend.currentElems, before.currentElems - 64);
      p.recvOwnership(A, half, true);
      EXPECT_TRUE(p.await(A, half));
      auto afterBack = p.table().storageStats(A);
      EXPECT_EQ(afterBack.currentElems, before.currentElems);
      EXPECT_EQ(afterBack.poolElems, before.poolElems) << "pool grew";
    } else {
      p.recvOwnership(A, half, true);
      EXPECT_TRUE(p.await(A, half));
      p.sendOwnership(A, half, true, std::vector<int>{0});
    }
  });
}

TEST(RtOwnership, RoundTripReusesFreedPool) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 64)};
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(1)}),
                                  SegmentShape::of({16}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      for (int round = 0; round < 8; ++round) {
        p.sendOwnership(A, g, true, std::vector<int>{1});
        p.recvOwnership(A, g, true);
        EXPECT_TRUE(p.await(A, g));
      }
      auto st = p.table().storageStats(A);
      // Freed storage must be recycled: the pool never exceeds one full
      // copy of the local data (64 elements).
      EXPECT_LE(st.poolElems, 64u);
      EXPECT_EQ(st.currentElems, 64u);
    } else {
      for (int round = 0; round < 8; ++round) {
        p.recvOwnership(A, g, true);
        EXPECT_TRUE(p.await(A, g));
        p.sendOwnership(A, g, true, std::vector<int>{0});
      }
    }
  });
}

TEST(RtOwnership, ValuesSurviveRoundTrip) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 16)};
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(1)}));
  rt.run([&](Proc& p) {
    std::vector<double> vals(16);
    for (int i = 0; i < 16; ++i) vals[static_cast<unsigned>(i)] = i * 1.5;
    if (p.mypid() == 0) {
      p.write<double>(A, g, vals);
      p.sendOwnership(A, g, true, std::vector<int>{1});
      p.recvOwnership(A, g, true);
      EXPECT_TRUE(p.await(A, g));
      EXPECT_EQ(p.read<double>(A, g), vals);
    } else {
      p.recvOwnership(A, g, true);
      EXPECT_TRUE(p.await(A, g));
      p.sendOwnership(A, g, true, std::vector<int>{0});
    }
  });
}

TEST(RtOwnership, DebugChecksCatchDoubleOwnershipReceive) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 8)};
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      // p0 already owns [1:4]; receiving ownership of an owned section is
      // a usage error.
      EXPECT_THROW(p.recvOwnership(A, Section{Triplet(1, 4)}, true),
                   xdp::UsageError);
      EXPECT_THROW(p.recvOwnership(A, Section{Triplet(4, 5)}, true),
                   xdp::UsageError);  // partial overlap too
    }
  });
}

TEST(RtOwnership, DebugChecksCatchUnownedOwnershipSend) {
  Runtime rt(2, debug());
  Section g{Triplet(1, 8)};
  int A = rt.declareArray<double>("A", g, Distribution(g, {DimSpec::block(2)}));
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      EXPECT_THROW(p.sendOwnership(A, Section{Triplet(5, 8)}, true),
                   xdp::UsageError);
    }
  });
}

TEST(RtOwnership, MypidFollowsOwnershipNotCode) {
  // "load balancing can be implemented by migrating ownership of data
  // while still running the same SPMD program" — after migration, the
  // iown() guard selects a different processor for the same statement.
  Runtime rt(2, debug());
  Section g{Triplet(1)};
  int W = rt.declareArray<double>("W", g, Distribution(g, {DimSpec::block(1)}));
  std::atomic<int> executedBy{-1};
  rt.run([&](Proc& p) {
    Section w{Triplet(1)};
    // Phase 1: owner executes the guarded statement.
    if (p.iown(W, w)) {
      EXPECT_EQ(p.mypid(), 0);
      p.sendOwnership(W, w, true, std::vector<int>{1});
    } else {
      p.recvOwnership(W, w, true);
    }
    p.barrier();
    // Phase 2: the *same* guarded statement now runs on p1.
    if (p.await(W, w)) {
      executedBy = p.mypid();
    }
  });
  EXPECT_EQ(executedBy, 1);
}

TEST(RtOwnership, TaskFarmConcurrentReceives) {
  // Section 2.7: an owner emits a sequence of value-carrying sends; idle
  // processors post receives for the same name and each send is matched
  // to exactly one of them (FCFS at the matchmaker).
  const int P = 4, kJobs = 12;
  Runtime rt(P, debug());
  Section gJ{Triplet(1, kJobs)};
  // Jobs start on p0.
  int J = rt.declareArray<double>("J", gJ, Distribution(gJ, {DimSpec::block(1)}),
                                  SegmentShape::of({1}));
  // Each worker's inbox slot.
  Section gW{Triplet(0, P - 1)};
  int M = rt.declareArray<double>("M", gW, Distribution(gW, {DimSpec::block(P)}));
  std::atomic<int> jobsDone{0};
  std::array<std::atomic<int>, 4> perWorker{};
  rt.run([&](Proc& p) {
    if (p.mypid() == 0) {
      for (Index j = 1; j <= kJobs; ++j) {
        p.set<double>(J, Point{j}, static_cast<double>(j));
        p.send(J, Section{Triplet(j)});  // J[j] -> (unspecified)
      }
    } else {
      // Workers greedily pull jobs. Deterministic split: worker w takes
      // jobs w, w+3, w+6... by name so each job has exactly one receiver.
      for (Index j = static_cast<Index>(p.mypid()); j <= kJobs;
           j += P - 1) {
        Section slot{Triplet(p.mypid())};  // M[mypid] is worker-owned
        p.recv(M, slot, J, Section{Triplet(j)});
        EXPECT_TRUE(p.await(M, slot));
        EXPECT_DOUBLE_EQ(p.get<double>(M, Point{p.mypid()}),
                         static_cast<double>(j));
        jobsDone++;
        perWorker[static_cast<unsigned>(p.mypid())]++;
      }
    }
  });
  EXPECT_EQ(jobsDone, kJobs);
  for (int w = 1; w < P; ++w)
    EXPECT_EQ(perWorker[static_cast<unsigned>(w)], kJobs / (P - 1));
  EXPECT_EQ(rt.fabric().undeliveredCount(), 0u);
}

TEST(RtOwnership, RedistributeBlockToOther) {
  // Full redistribution by ownership transfer: (*,BLOCK) -> (BLOCK,*) of
  // a 4x4 array over 2 procs, the 2-D analogue of the paper's FFT Loop 3.
  const int P = 2;
  Runtime rt(P, debug());
  Section g{Triplet(1, 4), Triplet(1, 4)};
  Distribution colBlock(g, {DimSpec::collapsed(), DimSpec::block(P)});
  int A = rt.declareArray<double>("A", g, colBlock,
                                  SegmentShape::of({4, 1}));
  rt.run([&](Proc& p) {
    // Init: element (i,j) = 10*i + j on its owner.
    g.forEach([&](const Point& pt) {
      if (p.iown(A, Section{Triplet(pt[0]), Triplet(pt[1])}))
        p.set<double>(A, pt, 10.0 * pt[0] + pt[1]);
    });
    p.barrier();
    // Redistribute to (BLOCK,*): processor p owns rows 2p+1..2p+2.
    Index rlo = 2 * p.mypid() + 1, rhi = 2 * p.mypid() + 2;
    Index clo = 2 * p.mypid() + 1, chi = 2 * p.mypid() + 2;
    // Send away the part of my columns that lands on the other proc.
    int other = 1 - p.mypid();
    Index orlo = 2 * other + 1, orhi = 2 * other + 2;
    Section outgoing{Triplet(orlo, orhi), Triplet(clo, chi)};
    p.sendOwnership(A, outgoing, true, std::vector<int>{other});
    // Receive the part of my rows that was on the other proc.
    Section incoming{Triplet(rlo, rhi), Triplet(2 * other + 1, 2 * other + 2)};
    p.recvOwnership(A, incoming, true);
    Section myRows{Triplet(rlo, rhi), Triplet(1, 4)};
    EXPECT_TRUE(p.await(A, myRows));
    EXPECT_TRUE(p.iown(A, myRows));
    // Values intact after redistribution.
    myRows.forEach([&](const Point& pt) {
      EXPECT_DOUBLE_EQ(p.get<double>(A, pt), 10.0 * pt[0] + pt[1]);
    });
  });
}

}  // namespace
}  // namespace xdp::rt
