// RegionList: the disjoint-union index-set machinery behind localPart and
// the run-time ownership bookkeeping.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "xdp/sections/region_list.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::sec {
namespace {

std::set<std::vector<Index>> pointSet(const RegionList& rl) {
  std::set<std::vector<Index>> out;
  rl.forEach([&](const Point& p) {
    std::vector<Index> v;
    for (int d = 0; d < p.rank(); ++d) v.push_back(p[d]);
    out.insert(v);
  });
  return out;
}

TEST(RegionList, EmptyCoversOnlyEmpty) {
  RegionList rl;
  EXPECT_TRUE(rl.empty());
  EXPECT_TRUE(rl.covers(Section{Triplet(), Triplet(1, 3)}));
  EXPECT_FALSE(rl.covers(Section{Triplet(1), Triplet(1)}));
}

TEST(RegionList, AddDeduplicatesOverlap) {
  RegionList rl;
  rl.add(Section{Triplet(1, 8)});
  rl.add(Section{Triplet(5, 12)});
  EXPECT_EQ(rl.count(), 12);  // 1..12, no double counting
  EXPECT_TRUE(rl.covers(Section{Triplet(1, 12)}));
  EXPECT_FALSE(rl.covers(Section{Triplet(1, 13)}));
}

TEST(RegionList, CoversIsPaperIownAlgorithm) {
  // The example from section 3.1: C[1:4,1:8] (BLOCK,BLOCK) on 2x2, P3 owns
  // C[1:2,5:8] split into 1x2 segments; iown(C[1,5:7]) is true.
  RegionList p3;
  p3.add(Section{Triplet(1, 2), Triplet(5, 6)});
  p3.add(Section{Triplet(1, 2), Triplet(7, 8)});
  EXPECT_TRUE(p3.covers(Section{Triplet(1), Triplet(5, 7)}));
  EXPECT_FALSE(p3.covers(Section{Triplet(1), Triplet(4, 7)}));
  EXPECT_FALSE(p3.covers(Section{Triplet(3), Triplet(5, 7)}));
}

TEST(RegionList, SubtractThenCoversFails) {
  RegionList rl(Section{Triplet(1, 10), Triplet(1, 10)});
  rl.subtract(Section{Triplet(3, 5), Triplet(3, 5)});
  EXPECT_EQ(rl.count(), 100 - 9);
  EXPECT_FALSE(rl.covers(Section{Triplet(3), Triplet(3)}));
  EXPECT_TRUE(rl.covers(Section{Triplet(1, 10), Triplet(6, 10)}));
}

TEST(RegionList, IntersectReturnsClippedPieces) {
  RegionList rl;
  rl.add(Section{Triplet(1, 4)});
  rl.add(Section{Triplet(10, 14)});
  auto pieces = rl.intersect(Section{Triplet(3, 12)});
  Index total = 0;
  for (const auto& p : pieces) total += p.count();
  EXPECT_EQ(total, 2 + 3);  // {3,4} and {10,11,12}
}

TEST(RegionList, SameSet) {
  RegionList a;
  a.add(Section{Triplet(1, 4)});
  a.add(Section{Triplet(5, 8)});
  RegionList b(Section{Triplet(1, 8)});
  EXPECT_TRUE(a.sameSet(b));
  b.subtract(Section{Triplet(8)});
  EXPECT_FALSE(a.sameSet(b));
}

class RegionListProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionListProperty, RandomAddSubtractMatchesSetModel) {
  Rng rng(GetParam());
  RegionList rl;
  std::set<std::vector<Index>> model;
  for (int op = 0; op < 40; ++op) {
    Section s{Triplet(rng.range(0, 10), rng.range(0, 18), rng.range(1, 3)),
              Triplet(rng.range(0, 10), rng.range(0, 18), rng.range(1, 3))};
    if (rng.below(3) != 0) {
      rl.add(s);
      s.forEach([&](const Point& p) {
        model.insert({p[0], p[1]});
      });
    } else {
      rl.subtract(s);
      s.forEach([&](const Point& p) {
        model.erase({p[0], p[1]});
      });
    }
    ASSERT_EQ(rl.count(), static_cast<Index>(model.size()))
        << "disjointness violated at op " << op;
    ASSERT_EQ(pointSet(rl), model) << "content mismatch at op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionListProperty,
                         ::testing::Values(3, 17, 29, 71, 101));

}  // namespace
}  // namespace xdp::sec
