// Property tests for the ownership fast path: the indexed/cached
// ProcTable state queries and ownedRanges must stay bit-identical to
// brute-force per-element iown across randomized ownership histories, the
// lock-free cache-hit path must be race-free (run under `-L sanitize`),
// and the interpreter's guarded-loop range splitting must be observable
// only through InterpStats.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <set>
#include <thread>
#include <utility>

#include "xdp/interp/interpreter.hpp"
#include "xdp/rt/proc_table.hpp"

namespace xdp::rt {
namespace {

using dist::DimSpec;
using dist::Distribution;
using sec::Point;
using sec::Triplet;

std::vector<SymbolDecl> oneArray(const Section& g, Distribution d) {
  SymbolDecl decl;
  decl.index = 0;
  decl.name = "A";
  decl.type = ElemType::F64;
  decl.global = g;
  decl.dist = std::move(d);
  return {decl};
}

Section pointSec(const Point& p) {
  std::vector<Triplet> dims;
  for (int d = 0; d < p.rank(); ++d) dims.emplace_back(p[d]);
  return Section(dims);
}

/// Per-element shadow model of one processor's table.
struct Shadow {
  std::set<std::vector<Index>> owned;
  std::vector<Section> pending;

  static std::vector<Index> key(const Point& p) {
    std::vector<Index> k;
    for (int d = 0; d < p.rank(); ++d) k.push_back(p[d]);
    return k;
  }
  bool ownsAll(const Section& s) const {
    bool all = true;
    s.forEach([&](const Point& p) { all = all && owned.count(key(p)) > 0; });
    return all;
  }
  bool ownsNone(const Section& s) const {
    bool none = true;
    s.forEach([&](const Point& p) { none = none && owned.count(key(p)) == 0; });
    return none;
  }
  bool pendingOverlaps(const Section& s) const {
    for (const Section& p : pending)
      if (!Section::intersect(p, s).empty()) return true;
    return false;
  }
  bool pendingContains(const Point& p) const {
    for (const Section& s : pending)
      if (!Section::intersect(s, pointSec(p)).empty()) return true;
    return false;
  }
};

/// Assert every fast-path query on `t` agrees with brute-force per-element
/// queries and with the shadow model, for one query section.
void checkQueries(ProcTable& t, const Shadow& sh, const Section& q) {
  const bool wantOwn = sh.ownsAll(q);
  const bool wantAcc = wantOwn && !sh.pendingOverlaps(q);

  // Aggregate queries, twice so the second answer comes from the memo
  // cache.
  EXPECT_EQ(t.iown(0, q), wantOwn) << q.str();
  EXPECT_EQ(t.iown(0, q), wantOwn) << q.str() << " (cached)";
  EXPECT_EQ(t.accessible(0, q), wantAcc) << q.str();
  EXPECT_EQ(t.accessible(0, q), wantAcc) << q.str() << " (cached)";

  // Brute force: the aggregate must equal the per-element conjunction.
  bool allOwn = true;
  q.forEach([&](const Point& p) {
    allOwn = allOwn && t.iown(0, pointSec(p));
  });
  EXPECT_EQ(allOwn, wantOwn) << q.str() << " (element-wise)";

  // ownedRanges: disjoint cover of exactly the owned elements of q.
  std::set<std::vector<Index>> want;
  q.forEach([&](const Point& p) {
    if (sh.owned.count(Shadow::key(p))) want.insert(Shadow::key(p));
  });
  std::set<std::vector<Index>> got;
  const sec::RegionList ranges = t.ownedRanges(0, q);
  for (const Section& s : ranges.sections()) {
    s.forEach([&](const Point& p) {
      EXPECT_TRUE(got.insert(Shadow::key(p)).second)
          << "overlapping ownedRanges pieces at " << q.str();
    });
  }
  EXPECT_EQ(got, want) << q.str();

  // excludeTransitional: the accessible elements only.
  std::set<std::vector<Index>> wantAccElems;
  q.forEach([&](const Point& p) {
    if (sh.owned.count(Shadow::key(p)) && !sh.pendingContains(p))
      wantAccElems.insert(Shadow::key(p));
  });
  std::set<std::vector<Index>> gotAcc;
  const sec::RegionList accRanges = t.ownedRanges(0, q, true);
  for (const Section& s : accRanges.sections()) {
    s.forEach([&](const Point& p) { gotAcc.insert(Shadow::key(p)); });
  }
  EXPECT_EQ(gotAcc, wantAccElems) << q.str() << " (excludeTransitional)";
}

TEST(OwnershipFastPath, RandomHistory1D) {
  for (unsigned seed : {1u, 2u, 3u, 4u}) {
    std::mt19937 rng(seed);
    const Section g{Triplet(0, 63)};
    ProcTable t(0, oneArray(g, Distribution(g, {DimSpec::block(2)})),
                /*debugChecks=*/true);
    Shadow sh;
    for (Index i = 0; i <= 31; ++i) sh.owned.insert({i});  // pid 0's block

    auto randSec = [&] {
      std::uniform_int_distribution<Index> lbD(0, 63), lenD(0, 15),
          strideD(1, 3);
      Index lb = lbD(rng);
      return Section{
          Triplet(lb, std::min<Index>(63, lb + lenD(rng)), strideD(rng))};
    };

    double clock = 1.0;
    for (int step = 0; step < 250; ++step) {
      const int op = static_cast<int>(rng() % 4);
      if (op == 0) {
        // Release: give away an accessible piece of a random query.
        sec::RegionList acc = t.ownedRanges(0, randSec(), true);
        if (!acc.sections().empty()) {
          const Section& piece = acc.sections().front();
          t.takeOwnershipOut(0, piece, rng() % 2 == 0);
          piece.forEach(
              [&](const Point& p) { sh.owned.erase(Shadow::key(p)); });
        }
      } else if (op == 1) {
        // Acquire: start an ownership receive into an unowned section.
        Section s = randSec();
        if (sh.ownsNone(s)) {
          t.beginOwnershipReceive(0, s);
          s.forEach([&](const Point& p) { sh.owned.insert(Shadow::key(p)); });
          sh.pending.push_back(s);
        }
      } else if (op == 2) {
        // Data receive into an owned, currently-quiet section.
        Section s = randSec();
        if (sh.ownsAll(s) && !sh.pendingOverlaps(s)) {
          t.beginReceive(0, s);
          sh.pending.push_back(s);
        }
      } else if (!sh.pending.empty()) {
        // Complete one outstanding receive.
        const std::size_t k = rng() % sh.pending.size();
        Section s = sh.pending[k];
        std::vector<std::byte> payload(
            static_cast<std::size_t>(s.count()) * sizeof(double));
        t.completeReceive(0, s, payload.data(), clock);
        clock += 1.0;
        sh.pending.erase(sh.pending.begin() +
                         static_cast<std::ptrdiff_t>(k));
      }
      checkQueries(t, sh, randSec());
    }
    EXPECT_GT(t.cacheStats().hits, 0u);
  }
}

TEST(OwnershipFastPath, RandomHistory2D) {
  std::mt19937 rng(11);
  const Section g{Triplet(0, 15), Triplet(0, 15)};
  ProcTable t(
      0,
      oneArray(g, Distribution(g, {DimSpec::block(2), DimSpec::block(2)})),
      /*debugChecks=*/true);
  Shadow sh;
  for (Index i = 0; i <= 7; ++i)
    for (Index j = 0; j <= 7; ++j) sh.owned.insert({i, j});

  auto randSec = [&] {
    std::uniform_int_distribution<Index> lbD(0, 15), lenD(0, 6), strideD(1, 2);
    Index lb0 = lbD(rng), lb1 = lbD(rng);
    return Section{
        Triplet(lb0, std::min<Index>(15, lb0 + lenD(rng)), strideD(rng)),
        Triplet(lb1, std::min<Index>(15, lb1 + lenD(rng)), strideD(rng))};
  };

  double clock = 1.0;
  for (int step = 0; step < 200; ++step) {
    const int op = static_cast<int>(rng() % 4);
    if (op == 0) {
      sec::RegionList acc = t.ownedRanges(0, randSec(), true);
      if (!acc.sections().empty()) {
        const Section& piece = acc.sections().front();
        t.takeOwnershipOut(0, piece, false);
        piece.forEach([&](const Point& p) { sh.owned.erase(Shadow::key(p)); });
      }
    } else if (op == 1) {
      Section s = randSec();
      if (sh.ownsNone(s)) {
        t.beginOwnershipReceive(0, s);
        s.forEach([&](const Point& p) { sh.owned.insert(Shadow::key(p)); });
        sh.pending.push_back(s);
      }
    } else if (op == 2) {
      Section s = randSec();
      if (sh.ownsAll(s) && !sh.pendingOverlaps(s)) {
        t.beginReceive(0, s);
        sh.pending.push_back(s);
      }
    } else if (!sh.pending.empty()) {
      const std::size_t k = rng() % sh.pending.size();
      Section s = sh.pending[k];
      std::vector<std::byte> payload(
          static_cast<std::size_t>(s.count()) * sizeof(double));
      t.completeReceive(0, s, payload.data(), clock);
      clock += 1.0;
      sh.pending.erase(sh.pending.begin() + static_cast<std::ptrdiff_t>(k));
    }
    checkQueries(t, sh, randSec());
  }
}

TEST(OwnershipFastPath, ManySegmentsUseTheIndex) {
  // Fragment ownership into dozens of single-element segments so queries
  // exercise the binary-search path (> linear-scan threshold), then check
  // against brute force.
  const Section g{Triplet(0, 255)};
  ProcTable t(0, oneArray(g, Distribution(g, {DimSpec::block(1)})),
              /*debugChecks=*/true);
  Shadow sh;
  for (Index i = 0; i <= 255; ++i) sh.owned.insert({i});
  // Give away every third element: leaves ~170 fragments.
  for (Index i = 0; i <= 255; i += 3) {
    t.takeOwnershipOut(0, Section{Triplet(i)}, false);
    sh.owned.erase({i});
  }
  std::mt19937 rng(21);
  for (int step = 0; step < 100; ++step) {
    std::uniform_int_distribution<Index> lbD(0, 255), lenD(0, 40),
        strideD(1, 4);
    Index lb = lbD(rng);
    checkQueries(t, sh,
                 Section{Triplet(lb, std::min<Index>(255, lb + lenD(rng)),
                                 strideD(rng))});
  }
}

TEST(OwnershipFastPath, EpochInvalidatesCache) {
  const Section g{Triplet(0, 31)};
  ProcTable t(0, oneArray(g, Distribution(g, {DimSpec::block(1)})), true);
  const Section q{Triplet(0, 15)};
  EXPECT_TRUE(t.iown(0, q));
  EXPECT_TRUE(t.iown(0, q));  // cache hit
  const auto before = t.cacheStats();
  EXPECT_GT(before.hits, 0u);
  // Mutate: the cached answer must not survive the epoch bump.
  t.takeOwnershipOut(0, Section{Triplet(4)}, false);
  EXPECT_FALSE(t.iown(0, q));
  EXPECT_TRUE(t.iown(0, Section{Triplet(0, 3)}));
}

TEST(OwnershipFastPath, ConcurrentReadersAndCompletions) {
  // TSan target: lock-free cache hits and shared-locked reads racing
  // receive initiation/completion and an await park/notify cycle.
  const Section g{Triplet(0, 255)};
  ProcTable t(0, oneArray(g, Distribution(g, {DimSpec::block(1)})),
              /*debugChecks=*/false);
  const Section churn{Triplet(0, 63)};     // receives cycle here
  const Section stable{Triplet(128, 191)}; // always accessible
  const Section foreign{Triplet(200, 255)};
  t.takeOwnershipOut(0, foreign, false);   // awaits on it must return false
  std::atomic<bool> done{false};

  std::thread writer([&] {
    std::vector<std::byte> payload(
        static_cast<std::size_t>(churn.count()) * sizeof(double));
    for (int i = 0; i < 400; ++i) {
      t.beginReceive(0, churn);
      t.completeReceive(0, churn, payload.data(), 1.0 + i);
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::vector<std::byte> buf(
          static_cast<std::size_t>(stable.count()) * sizeof(double));
      std::uint64_t trues = 0;
      for (int iter = 0; iter < 50 || !done.load(); ++iter) {
        if (t.iown(0, churn)) ++trues;
        t.accessible(0, churn);
        EXPECT_TRUE(t.iown(0, stable));
        EXPECT_TRUE(t.accessible(0, stable));
        t.ownedRanges(0, g);
        t.waitState();
        if (r == 0) t.readElems(0, stable, buf.data());
      }
      EXPECT_GT(trues, 0u);  // ownership never changed, only accessibility
    });
  }

  std::thread awaiter([&] {
    for (int i = 0; i < 50; ++i) {
      double arrival = 0.0;
      EXPECT_TRUE(t.await(0, churn, &arrival));
      EXPECT_FALSE(t.await(0, foreign, nullptr));
    }
  });

  writer.join();
  awaiter.join();
  done.store(true);
  for (auto& th : readers) th.join();
  EXPECT_TRUE(t.accessible(0, churn));
}

}  // namespace
}  // namespace xdp::rt

namespace xdp::sec {
namespace {

TEST(AffinePreimage, MatchesPointwiseMembership) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 400; ++trial) {
    std::uniform_int_distribution<Index> lbD(-50, 50), lenD(0, 40),
        strideD(1, 7), aD(-5, 5), bD(-60, 60);
    Index lb = lbD(rng);
    Triplet T(lb, lb + lenD(rng), strideD(rng));
    Index a = aD(rng);
    if (a == 0) a = 1;
    Index b = bD(rng);
    Triplet pre = T.affinePreimage(a, b);
    // |image values| <= 140 and |b| <= 60 with |a| >= 1 bounds any
    // preimage element by 200, so scanning [-200, 200] is exhaustive.
    for (Index i = -200; i <= 200; ++i) {
      EXPECT_EQ(pre.contains(i), T.contains(a * i + b))
          << "a=" << a << " b=" << b << " i=" << i;
    }
  }
}

TEST(AffinePreimage, EmptyAndSinglePoint) {
  EXPECT_TRUE(Triplet().affinePreimage(2, 1).empty());
  Triplet single(10);
  EXPECT_EQ(single.affinePreimage(2, 0), Triplet(5));
  EXPECT_TRUE(single.affinePreimage(2, 1).empty());  // 2i+1 is odd
  EXPECT_EQ(single.affinePreimage(-5, 0), Triplet(-2));
}

}  // namespace
}  // namespace xdp::sec

namespace xdp::interp {
namespace {

using dist::DimSpec;
using dist::Distribution;
using sec::Section;
using sec::Triplet;

il::Program guardProg(int nprocs, Index n) {
  il::Program prog;
  prog.nprocs = nprocs;
  Section g{Triplet(1, n)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::block(nprocs)}), {}});
  // Three owner-computes loops: identity, scaled, and offset subscripts.
  prog.body = il::block({
      il::forLoop("i", il::intConst(1), il::intConst(n),
                  il::guarded(il::iown(0, il::secPoint({il::scalar("i")})),
                              il::block({il::elemAssign(
                                  0, il::secPoint({il::scalar("i")}),
                                  il::mul(il::scalar("i"),
                                          il::intConst(2)))}))),
      il::forLoop(
          "j", il::intConst(1), il::intConst(n / 2),
          il::guarded(
              il::iown(0, il::secPoint({il::mul(il::intConst(2),
                                                il::scalar("j"))})),
              il::block({il::elemAssign(
                  0, il::secPoint({il::mul(il::intConst(2), il::scalar("j"))}),
                  il::add(il::elem(0, il::secPoint({il::mul(
                                          il::intConst(2), il::scalar("j"))})),
                          il::intConst(1)))}))),
      il::forLoop(
          "k", il::intConst(0), il::intConst(n - 1),
          il::guarded(
              il::iown(0, il::secPoint({il::add(il::scalar("k"),
                                                il::intConst(1))})),
              il::block({il::elemAssign(
                  0, il::secPoint({il::add(il::scalar("k"), il::intConst(1))}),
                  il::add(il::elem(0, il::secPoint({il::add(
                                          il::scalar("k"), il::intConst(1))})),
                          il::intConst(100)))}))),
  });
  return prog;
}

std::vector<double> readAll(rt::Runtime& rt, int nprocs, Index n) {
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  for (int pid = 0; pid < nprocs; ++pid) {
    rt::ProcTable& t = rt.table(pid);
    for (Index i = 1; i <= n; ++i) {
      Section pt{Triplet(i)};
      if (!t.iown(0, pt)) continue;
      double v = 0.0;
      t.readElems(0, pt, reinterpret_cast<std::byte*>(&v));
      out[static_cast<std::size_t>(i - 1)] = v;
    }
  }
  return out;
}

TEST(GuardSplit, SplitAndNaiveSchedulesAgree) {
  constexpr int kProcs = 4;
  constexpr Index kN = 64;
  rt::RuntimeOptions ro;
  ro.debugChecks = true;  // writes to unowned elements would throw

  InterpOptions naive;
  naive.splitGuardedLoops = false;
  Interpreter a(guardProg(kProcs, kN), ro, naive);
  a.run();

  Interpreter b(guardProg(kProcs, kN), ro, InterpOptions{});
  b.run();

  EXPECT_EQ(readAll(a.runtime(), kProcs, kN),
            readAll(b.runtime(), kProcs, kN));

  // Legacy counters describe the logical schedule — identical either way.
  const InterpStats sa = a.totalStats(), sb = b.totalStats();
  EXPECT_EQ(sa.rulesEvaluated, sb.rulesEvaluated);
  EXPECT_EQ(sa.rulesTrue, sb.rulesTrue);
  EXPECT_EQ(sa.loopIterations, sb.loopIterations);
  EXPECT_EQ(sa.stmtsExecuted, sb.stmtsExecuted);
  EXPECT_EQ(sa.elemAssigns, sb.elemAssigns);

  // The fast path fired on every loop in split mode, never in naive mode.
  EXPECT_EQ(sa.rangeSplits, 0u);
  EXPECT_EQ(sb.rangeSplits, 3u * kProcs);
  EXPECT_EQ(sb.guardedItersSaved,
            static_cast<std::uint64_t>(kN + kN / 2 + kN) * kProcs);
  EXPECT_EQ(sa.guardedItersSaved, 0u);
}

TEST(GuardSplit, BodyMutatingGuardScalarFallsBack) {
  il::Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 8)};
  prog.addArray({"A", rt::ElemType::F64, g, Distribution(g, {DimSpec::block(2)}),
                 {}});
  // The guard reads `off`, the body reassigns it: splitting would freeze
  // the guard section, so the loop must run the naive schedule.
  prog.body = il::block({
      il::scalarAssign("off", il::intConst(0)),
      il::forLoop(
          "i", il::intConst(1), il::intConst(8),
          il::guarded(
              il::iown(0, il::secPoint({il::add(il::scalar("i"),
                                                il::scalar("off"))})),
              il::block({il::scalarAssign("off", il::intConst(0))}))),
  });
  Interpreter in(prog, {}, InterpOptions{});
  in.run();
  EXPECT_EQ(in.totalStats().rangeSplits, 0u);
  EXPECT_EQ(in.totalStats().rulesEvaluated, 16u);
}

TEST(GuardSplit, LoopVariableHoldsFinalValueAfterSplit) {
  // The naive schedule leaves the loop variable at its last iteration's
  // value; the split path must preserve that for code after the loop.
  il::Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 8)};
  prog.addArray({"A", rt::ElemType::F64, g, Distribution(g, {DimSpec::block(2)}),
                 {}});
  prog.body = il::block({
      il::forLoop("i", il::intConst(1), il::intConst(8),
                  il::guarded(il::iown(0, il::secPoint({il::scalar("i")})),
                              il::block({il::elemAssign(
                                  0, il::secPoint({il::scalar("i")}),
                                  il::intConst(1))}))),
      // Writes A[i] after the loop: i must be 8, owned by pid 1 only.
      il::guarded(il::iown(0, il::secPoint({il::scalar("i")})),
                  il::block({il::elemAssign(
                      0, il::secPoint({il::scalar("i")}), il::intConst(7))})),
  });
  rt::RuntimeOptions ro;
  ro.debugChecks = true;
  Interpreter in(prog, ro, InterpOptions{});
  in.run();
  EXPECT_GT(in.totalStats().rangeSplits, 0u);
  rt::ProcTable& t1 = in.runtime().table(1);
  double v = 0.0;
  t1.readElems(0, Section{Triplet(8)}, reinterpret_cast<std::byte*>(&v));
  EXPECT_EQ(v, 7.0);
}

TEST(GuardSplit, CacheHitsAreReported) {
  // A loop-invariant *range* guard is not splittable (not a point
  // section), so it is re-queried per iteration — every query after the
  // first is a memo-cache hit, surfaced through InterpStats.
  il::Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 8)};
  prog.addArray({"A", rt::ElemType::F64, g, Distribution(g, {DimSpec::block(2)}),
                 {}});
  prog.body = il::block({il::forLoop(
      "i", il::intConst(1), il::intConst(8),
      il::guarded(il::iown(0, il::secRange1(il::intConst(1), il::intConst(4))),
                  il::block({})))});
  Interpreter in(prog, {}, InterpOptions{});
  in.run();
  EXPECT_EQ(in.totalStats().rangeSplits, 0u);
  EXPECT_GT(in.totalStats().guardCacheHits, 0u);
}

}  // namespace
}  // namespace xdp::interp
