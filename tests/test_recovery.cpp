// Differential crash-tolerance tests (DESIGN.md §11): a run that crashes
// mid-way and recovers from a checkpoint must produce a result digest and
// logical counters bit-identical to the uninterrupted run, on both
// execution engines, for every example program. Preemption must likewise
// round-trip: a run preempted to a snapshot and resumed — in the same
// runtime or in a freshly constructed one fed the serialized bytes —
// finishes with the fault-free digest.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>

#include "xdp/apps/programs.hpp"
#include "xdp/ckpt/io.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/interp/interpreter.hpp"
#include "xdp/support/check.hpp"

namespace xdp::interp {
namespace {

using sec::Index;
using sec::Section;

il::Program loadExample(const std::string& name) {
  std::string path = std::string(XDP_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return il::parseProgram(buf.str());
}

/// FNV-1a over every array's final contents in global Fortran order
/// (same digest as test_vm_differential and the serve layer).
std::uint64_t digestState(rt::Runtime& rt) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::byte* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint64_t>(std::to_integer<unsigned>(p[i]));
      h *= 1099511628211ULL;
    }
  };
  std::vector<std::byte> buf, seg;
  for (const auto& d : rt.decls()) {
    const std::size_t esz = rt::elemSize(d.type);
    buf.assign(static_cast<std::size_t>(d.global.count()) * esz,
               std::byte{0});
    for (int p = 0; p < rt.nprocs(); ++p) {
      for (const auto& sg : rt.table(p).segments(d.index)) {
        if (sg.status != rt::SegState::Accessible) continue;
        seg.resize(static_cast<std::size_t>(sg.count()) * esz);
        rt.table(p).readElems(d.index, sg.bounds, seg.data());
        std::size_t i = 0;
        sg.bounds.forEach([&](const sec::Point& pt) {
          const std::size_t pos =
              static_cast<std::size_t>(d.global.fortranPos(pt));
          std::memcpy(buf.data() + pos * esz, seg.data() + i * esz, esz);
          ++i;
        });
      }
    }
    mix(buf.data(), buf.size());
  }
  return h;
}

struct RunResult {
  std::uint64_t digest = 0;
  InterpStats stats;
  std::uint64_t messagesSent = 0, bytesSent = 0, ownershipTransfers = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t snapshots = 0;
};

RunResult gather(Interpreter& in) {
  RunResult r;
  r.digest = digestState(in.runtime());
  r.stats = in.totalStats();
  auto net = in.runtime().fabric().totalStats();
  r.messagesSent = net.messagesSent;
  r.bytesSent = net.bytesSent;
  r.ownershipTransfers = net.ownershipTransfers;
  r.recoveries = in.runtime().recoveries();
  if (in.runtime().ckptStore() != nullptr)
    r.snapshots = in.runtime().ckptStore()->stats().snapshots;
  return r;
}

RunResult baselineRun(const il::Program& prog, Backend be) {
  InterpOptions io;
  io.backend = be;
  Interpreter in(prog, {}, io);
  apps::registerFillKernel(in, 42);
  apps::registerFftKernels(in);
  in.run();
  return gather(in);
}

RunResult crashRecoverRun(const il::Program& prog, Backend be,
                          std::uint64_t crashAfterSends,
                          std::uint64_t intervalSteps) {
  rt::RuntimeOptions opts;
  net::FaultPlan plan;
  // Arm every pid: which processor sends first (or at all) differs per
  // program, and the budget counts each endpoint's own sends.
  for (int p = 0; p < prog.nprocs; ++p) plan.crashPids.push_back(p);
  plan.crashAfterSends = crashAfterSends;
  plan.crashFate = net::CrashFate::Recover;
  opts.faultPlan = plan;
  InterpOptions io;
  io.backend = be;
  Interpreter in(prog, opts, io);
  ckpt::CkptOptions co;
  co.intervalSteps = intervalSteps;
  in.runtime().enableCheckpointing(co);
  apps::registerFillKernel(in, 42);
  apps::registerFftKernels(in);
  in.run();
  return gather(in);
}

/// The six logical counters both engines and every recovery path must
/// reproduce exactly. Fast-path counters (guardCacheHits, rangeSplits,
/// guardedItersSaved) are excluded by design: range splitting is disabled
/// under checkpointing and cache hits depend on table lifetimes.
void expectLogicalEq(const RunResult& a, const RunResult& b,
                     const std::string& what) {
  EXPECT_EQ(a.digest, b.digest) << what << ": result digests differ";
  EXPECT_EQ(a.stats.stmtsExecuted, b.stats.stmtsExecuted) << what;
  EXPECT_EQ(a.stats.loopIterations, b.stats.loopIterations) << what;
  EXPECT_EQ(a.stats.rulesEvaluated, b.stats.rulesEvaluated) << what;
  EXPECT_EQ(a.stats.rulesTrue, b.stats.rulesTrue) << what;
  EXPECT_EQ(a.stats.elemAssigns, b.stats.elemAssigns) << what;
  EXPECT_EQ(a.stats.kernelCalls, b.stats.kernelCalls) << what;
  EXPECT_EQ(a.messagesSent, b.messagesSent) << what;
  EXPECT_EQ(a.bytesSent, b.bytesSent) << what;
  EXPECT_EQ(a.ownershipTransfers, b.ownershipTransfers) << what;
}

class RecoveryDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(RecoveryDifferential, CrashRecoverMatchesFaultFreeTreeWalk) {
  il::Program prog = loadExample(GetParam());
  RunResult base = baselineRun(prog, Backend::TreeWalk);
  RunResult rec = crashRecoverRun(prog, Backend::TreeWalk, 0, 32);
  // A program with no communication (vecadd) never trips a send-triggered
  // crash; the differential still checks the checkpointing machinery is
  // inert on its results.
  if (base.messagesSent > 0)
    EXPECT_GE(rec.recoveries, 1u) << "crash never triggered";
  expectLogicalEq(base, rec, std::string(GetParam()) + " (tree)");
}

TEST_P(RecoveryDifferential, CrashRecoverMatchesFaultFreeBytecode) {
  il::Program prog = loadExample(GetParam());
  RunResult base = baselineRun(prog, Backend::Bytecode);
  RunResult rec = crashRecoverRun(prog, Backend::Bytecode, 0, 32);
  if (base.messagesSent > 0)
    EXPECT_GE(rec.recoveries, 1u) << "crash never triggered";
  expectLogicalEq(base, rec, std::string(GetParam()) + " (vm)");
}

TEST_P(RecoveryDifferential, LateCrashRecoversFromMidRunSnapshot) {
  // A later crash budget lets periodic captures land first, so recovery
  // restores a mid-run snapshot rather than the genesis one.
  il::Program prog = loadExample(GetParam());
  for (Backend be : {Backend::TreeWalk, Backend::Bytecode}) {
    RunResult base = baselineRun(prog, be);
    RunResult rec = crashRecoverRun(prog, be, 3, 16);
    if (rec.recoveries == 0) continue;  // p1 sent too few messages to die
    EXPECT_GE(rec.snapshots, 1u);
    expectLogicalEq(base, rec, std::string(GetParam()) + " (late crash)");
  }
}

INSTANTIATE_TEST_SUITE_P(Examples, RecoveryDifferential,
                         ::testing::Values("vecadd.xdp", "jacobi.xdp",
                                           "cannon.xdp", "ownership.xdp",
                                           "taskfarm.xdp"));

class PreemptResume : public ::testing::TestWithParam<Backend> {};

TEST_P(PreemptResume, PreemptThenResumeSameRuntimeMatchesFaultFree) {
  il::Program prog = loadExample("jacobi.xdp");
  RunResult base = baselineRun(prog, GetParam());

  rt::Runtime* rtp = nullptr;
  std::atomic<bool> armed{true};
  InterpOptions io;
  io.backend = GetParam();
  io.stepHook = [&](rt::Proc& p) {
    if (p.mypid() == 0 && armed.exchange(false)) rtp->requestPreempt();
  };
  Interpreter in(prog, {}, io);
  rtp = &in.runtime();
  in.runtime().enableCheckpointing({});
  apps::registerFillKernel(in, 42);
  apps::registerFftKernels(in);

  in.run();
  ASSERT_TRUE(in.runtime().preempted());
  ckpt::Snapshot snap = in.runtime().takePreemptSnapshot();
  EXPECT_EQ(snap.nprocs, prog.nprocs);

  in.runtime().restoreFrom(std::move(snap));
  in.run();
  EXPECT_FALSE(in.runtime().preempted());
  expectLogicalEq(base, gather(in), "preempt+resume");
}

TEST_P(PreemptResume, SnapshotSurvivesSerializationIntoFreshRuntime) {
  // Simulates resume in a different process: the snapshot goes through
  // the checksummed wire format and is restored into a runtime that
  // shares no state with the preempted one.
  il::Program prog = loadExample("jacobi.xdp");
  RunResult base = baselineRun(prog, GetParam());

  std::vector<std::byte> encoded;
  {
    rt::Runtime* rtp = nullptr;
    std::atomic<bool> armed{true};
    InterpOptions io;
    io.backend = GetParam();
    io.stepHook = [&](rt::Proc& p) {
      if (p.mypid() == 0 && armed.exchange(false)) rtp->requestPreempt();
    };
    Interpreter in(prog, {}, io);
    rtp = &in.runtime();
    in.runtime().enableCheckpointing({});
    apps::registerFillKernel(in, 42);
    apps::registerFftKernels(in);
    in.run();
    ASSERT_TRUE(in.runtime().preempted());
    encoded = ckpt::encodeSnapshot(in.runtime().takePreemptSnapshot());
  }

  InterpOptions io2;
  io2.backend = GetParam();
  Interpreter in2(prog, {}, io2);
  in2.runtime().enableCheckpointing({});
  apps::registerFillKernel(in2, 42);
  apps::registerFftKernels(in2);
  in2.runtime().restoreFrom(ckpt::decodeSnapshot(encoded));
  in2.run();
  expectLogicalEq(base, gather(in2), "serialized resume");
}

INSTANTIATE_TEST_SUITE_P(Backends, PreemptResume,
                         ::testing::Values(Backend::TreeWalk,
                                           Backend::Bytecode));

TEST(Recovery, CrossEngineResumeIsRejected) {
  il::Program prog = loadExample("vecadd.xdp");
  std::vector<std::byte> encoded;
  {
    rt::Runtime* rtp = nullptr;
    std::atomic<bool> armed{true};
    InterpOptions io;  // tree walker
    io.stepHook = [&](rt::Proc& p) {
      if (p.mypid() == 0 && armed.exchange(false)) rtp->requestPreempt();
    };
    Interpreter in(prog, {}, io);
    rtp = &in.runtime();
    in.runtime().enableCheckpointing({});
    apps::registerFillKernel(in, 42);
    in.run();
    ASSERT_TRUE(in.runtime().preempted());
    encoded = ckpt::encodeSnapshot(in.runtime().takePreemptSnapshot());
  }
  InterpOptions io2;
  io2.backend = Backend::Bytecode;
  Interpreter in2(prog, {}, io2);
  in2.runtime().enableCheckpointing({});
  apps::registerFillKernel(in2, 42);
  in2.runtime().restoreFrom(ckpt::decodeSnapshot(encoded));
  // The per-node CkptError is aggregated by the SPMD failure handler into
  // a single XdpError naming the failed processors.
  try {
    in2.run();
    FAIL() << "cross-engine resume was not rejected";
  } catch (const xdp::XdpError& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "cannot resume a continuation captured by another engine"),
              std::string::npos)
        << e.what();
  }
}

TEST(Recovery, ProgramHashMismatchIsRejected) {
  il::Program prog = loadExample("vecadd.xdp");
  Interpreter in(prog, {}, {});
  in.runtime().enableCheckpointing({});
  in.runtime().setCkptProgram(0, 111);
  apps::registerFillKernel(in, 42);
  in.run();
  ckpt::Snapshot snap = in.runtime().checkpoint();
  EXPECT_EQ(snap.programHash, 111u);
  snap.programHash = 222;
  EXPECT_THROW(in.runtime().restoreFrom(std::move(snap)), ckpt::CkptError);
}

TEST(Recovery, CheckpointingRunWithoutFaultsMatchesPlainRun) {
  // Steady state: enabling checkpointing (with periodic captures) must
  // not perturb results or logical counters.
  il::Program prog = loadExample("cannon.xdp");
  for (Backend be : {Backend::TreeWalk, Backend::Bytecode}) {
    RunResult base = baselineRun(prog, be);
    InterpOptions io;
    io.backend = be;
    Interpreter in(prog, {}, io);
    ckpt::CkptOptions co;
    co.intervalSteps = 64;
    in.runtime().enableCheckpointing(co);
    apps::registerFillKernel(in, 42);
    apps::registerFftKernels(in);
    in.run();
    RunResult r = gather(in);
    EXPECT_EQ(r.recoveries, 0u);
    expectLogicalEq(base, r, "steady-state ckpt");
  }
}

}  // namespace
}  // namespace xdp::interp
