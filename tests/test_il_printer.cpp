// IL construction and pretty-printing: the printer must reproduce the
// paper's surface syntax for its listings.
#include <gtest/gtest.h>

#include "xdp/il/printer.hpp"
#include "xdp/support/check.hpp"

namespace xdp::il {
namespace {

using dist::DimSpec;
using dist::Distribution;
using sec::Section;
using sec::Triplet;

Program vecAddLowered() {
  Program prog;
  prog.nprocs = 4;
  Section g{Triplet(1, 16)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::block(4)}), {}});
  prog.addArray({"B", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::cyclic(4)}), {}});
  Section gp{Triplet(0, 3)};
  prog.addArray({"T", rt::ElemType::F64, gp,
                 Distribution(gp, {DimSpec::block(4)}), {}});
  ExprPtr i = scalar("i");
  SectionExprPtr ai = secPoint({i});
  SectionExprPtr bi = secPoint({i});
  SectionExprPtr tp = secPoint({mypid()});
  int link = prog.freshLink();
  prog.body = forLoop(
      "i", intConst(1), intConst(16),
      block({guarded(iown(1, bi), block({sendData(1, bi, {}, link)})),
             guarded(iown(0, ai),
                     block({recvData(2, tp, 1, bi, link), awaitStmt(2, tp),
                            elemAssign(0, ai,
                                       add(elem(0, ai), elem(2, tp)))}))}));
  return prog;
}

TEST(IlPrinter, PaperSurfaceSyntax) {
  Program prog = vecAddLowered();
  std::string text = printProgram(prog);
  // The section 2.2 listing, modulo whitespace:
  EXPECT_NE(text.find("do i = 1, 16"), std::string::npos);
  EXPECT_NE(text.find("iown(B[i]) : {"), std::string::npos);
  EXPECT_NE(text.find("B[i] ->"), std::string::npos);
  EXPECT_NE(text.find("T[mypid] <- B[i]"), std::string::npos);
  EXPECT_NE(text.find("await(T[mypid])"), std::string::npos);
  EXPECT_NE(text.find("A[i] = (A[i] + T[mypid])"), std::string::npos);
  EXPECT_NE(text.find("enddo"), std::string::npos);
  // Declarations header.
  EXPECT_NE(text.find("A[1:16] distributed (BLOCK)"), std::string::npos);
  EXPECT_NE(text.find("B[1:16] distributed (CYCLIC)"), std::string::npos);
}

TEST(IlPrinter, OwnershipTransferSyntax) {
  Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 8)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::block(2)}), {}});
  ExprPtr i = scalar("i");
  prog.body = block({
      sendOwn(0, secPoint({i}), true),
      sendOwn(0, secPoint({i}), false),
      recvOwn(0, secPoint({i}), true),
      recvOwn(0, secPoint({i}), false),
  });
  std::string text = printStmt(prog, prog.body);
  EXPECT_NE(text.find("A[i] -=>"), std::string::npos);
  EXPECT_NE(text.find("A[i] =>"), std::string::npos);
  EXPECT_NE(text.find("A[i] <=-"), std::string::npos);
  EXPECT_NE(text.find("A[i] <="), std::string::npos);
}

TEST(IlPrinter, DestAndLinkAnnotations) {
  Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 8)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::block(2)}), {}});
  prog.body = block({
      sendData(0, secPoint({intConst(3)}),
               DestSpec::toPids({intConst(1)}), 7),
  });
  std::string plain = printStmt(prog, prog.body);
  EXPECT_NE(plain.find("A[3] -> {1}"), std::string::npos);
  EXPECT_EQ(plain.find("link"), std::string::npos);
  PrintOptions opts;
  opts.showLinks = true;
  std::string linked = printStmt(prog, prog.body, opts);
  EXPECT_NE(linked.find("//link 7"), std::string::npos);
}

TEST(IlPrinter, SectionExprForms) {
  Program prog;
  prog.nprocs = 2;
  Section g{Triplet(1, 8)};
  prog.addArray({"A", rt::ElemType::F64, g,
                 Distribution(g, {DimSpec::block(2)}), {}});
  auto s = secIntersect(secLocalPart(0), secOwnerPart(0, intConst(1)));
  EXPECT_EQ(printSection(prog, s), "[mypart]^[part(1)]");
  auto ranged = secLit({TripletExpr{intConst(1), intConst(7), intConst(2)}});
  EXPECT_EQ(printSection(prog, ranged), "[1:7:2]");
}

TEST(IlSameExpr, StructuralEquality) {
  ExprPtr a = add(scalar("i"), intConst(1));
  ExprPtr b = add(scalar("i"), intConst(1));
  ExprPtr c = add(scalar("j"), intConst(1));
  EXPECT_TRUE(sameExpr(a, b));
  EXPECT_FALSE(sameExpr(a, c));
  EXPECT_TRUE(sameSectionExpr(secPoint({a}), secPoint({b})));
  EXPECT_FALSE(sameSectionExpr(secPoint({a}), secPoint({c})));
  EXPECT_FALSE(sameSectionExpr(secPoint({a}),
                               secRange1(a, intConst(9))));
}

TEST(IlProgram, SymbolLookupAndFreshLinks) {
  Program prog = vecAddLowered();
  EXPECT_EQ(prog.findSymbol("A"), 0);
  EXPECT_EQ(prog.findSymbol("B"), 1);
  EXPECT_EQ(prog.findSymbol("missing"), -1);
  int l1 = prog.freshLink();
  int l2 = prog.freshLink();
  EXPECT_NE(l1, l2);
  EXPECT_THROW(prog.addArray({"A", rt::ElemType::F64, Section{Triplet(1, 2)},
                              Distribution(Section{Triplet(1, 2)},
                                           {DimSpec::block(1)}),
                              {}}),
               xdp::Error);
}

}  // namespace
}  // namespace xdp::il
