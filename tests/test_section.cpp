// Tests for multi-dimensional sections: intersection, subtraction,
// coverage, Fortran-order enumeration and positions.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "xdp/sections/section.hpp"
#include "xdp/support/rng.hpp"

namespace xdp::sec {
namespace {

std::set<std::vector<Index>> pointSet(const Section& s) {
  std::set<std::vector<Index>> out;
  s.forEach([&](const Point& p) {
    std::vector<Index> v;
    for (int d = 0; d < p.rank(); ++d) v.push_back(p[d]);
    out.insert(v);
  });
  return out;
}

std::set<std::vector<Index>> pointSet(const std::vector<Section>& ss) {
  std::set<std::vector<Index>> out;
  for (const auto& s : ss) {
    auto ps = pointSet(s);
    out.insert(ps.begin(), ps.end());
  }
  return out;
}

TEST(Section, ScalarRankZero) {
  Section s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.count(), 1);  // a scalar has exactly one element
  EXPECT_FALSE(s.empty());
  int visits = 0;
  s.forEach([&](const Point& p) {
    EXPECT_EQ(p.rank(), 0);
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Section, CountIsProduct) {
  Section s{Triplet(1, 4), Triplet(1, 8)};
  EXPECT_EQ(s.count(), 32);
  Section strided{Triplet(1, 10, 3), Triplet(2, 8, 2)};  // 4 * 4
  EXPECT_EQ(strided.count(), 16);
}

TEST(Section, EmptyIfAnyDimEmpty) {
  Section s{Triplet(1, 4), Triplet()};
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
}

TEST(Section, Contains) {
  Section s{Triplet(1, 10, 3), Triplet(5, 5)};
  EXPECT_TRUE(s.contains(Point{4, 5}));
  EXPECT_FALSE(s.contains(Point{5, 5}));
  EXPECT_FALSE(s.contains(Point{4, 6}));
  EXPECT_FALSE(s.contains(Point{4}));  // rank mismatch
}

TEST(Section, ContainsAll) {
  Section outer{Triplet(1, 8), Triplet(1, 8)};
  Section inner{Triplet(2, 6, 2), Triplet(3, 5)};
  EXPECT_TRUE(outer.containsAll(inner));
  EXPECT_FALSE(inner.containsAll(outer));
  EXPECT_TRUE(outer.containsAll(Section{Triplet(), Triplet(1, 3)}));  // empty
}

TEST(Section, IntersectPerDim) {
  Section a{Triplet(1, 8), Triplet(1, 8)};
  Section b{Triplet(5, 12), Triplet(0, 4, 2)};
  Section i = Section::intersect(a, b);
  EXPECT_EQ(i, (Section{Triplet(5, 8), Triplet(2, 4, 2)}));
}

TEST(Section, FortranOrderEnumeration) {
  // Dimension 0 varies fastest (paper arrays are Fortran-style).
  Section s{Triplet(1, 2), Triplet(10, 11)};
  std::vector<Point> pts = s.points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0], (Point{1, 10}));
  EXPECT_EQ(pts[1], (Point{2, 10}));
  EXPECT_EQ(pts[2], (Point{1, 11}));
  EXPECT_EQ(pts[3], (Point{2, 11}));
}

TEST(Section, FortranPosRoundTrip) {
  Section s{Triplet(2, 10, 2), Triplet(1, 3), Triplet(0, 4, 4)};
  Index expected = 0;
  s.forEach([&](const Point& p) {
    EXPECT_EQ(s.fortranPos(p), expected);
    ++expected;
  });
  EXPECT_EQ(expected, s.count());
}

TEST(Section, SubtractProducesDisjointExactCover) {
  Section a{Triplet(1, 8), Triplet(1, 8)};
  Section b{Triplet(3, 6), Triplet(3, 6)};
  auto rest = Section::subtract(a, b);
  auto expect = pointSet(a);
  for (const auto& v : pointSet(b)) expect.erase(v);
  EXPECT_EQ(pointSet(rest), expect);
  Index total = 0;
  for (const auto& s : rest) total += s.count();
  EXPECT_EQ(total, static_cast<Index>(expect.size())) << "pieces overlap";
}

class SectionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SectionProperty, SubtractMatchesBruteForce2D) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    auto randTrip = [&] {
      return Triplet(rng.range(-5, 8), rng.range(-5, 16), rng.range(1, 4));
    };
    Section a{randTrip(), randTrip()};
    Section b{randTrip(), randTrip()};
    auto rest = Section::subtract(a, b);
    auto expect = pointSet(a);
    for (const auto& v : pointSet(b)) expect.erase(v);
    EXPECT_EQ(pointSet(rest), expect);
    Index total = 0;
    for (const auto& s : rest) total += s.count();
    EXPECT_EQ(total, static_cast<Index>(expect.size()));
  }
}

TEST_P(SectionProperty, IntersectMatchesBruteForce3D) {
  Rng rng(GetParam() ^ 0x5555);
  for (int iter = 0; iter < 40; ++iter) {
    auto randTrip = [&] {
      return Triplet(rng.range(0, 6), rng.range(0, 12), rng.range(1, 3));
    };
    Section a{randTrip(), randTrip(), randTrip()};
    Section b{randTrip(), randTrip(), randTrip()};
    Section i = Section::intersect(a, b);
    auto expect = pointSet(a);
    auto bs = pointSet(b);
    std::set<std::vector<Index>> inter;
    for (const auto& v : expect)
      if (bs.count(v)) inter.insert(v);
    EXPECT_EQ(pointSet(std::vector<Section>{i}), inter);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SectionProperty,
                         ::testing::Values(7, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace xdp::sec
