// Zero-false-positive guarantees for the verifier across the optimizer:
// every shipped example program and every paper builder must verify clean
// at *every* stage of the standard pipeline (the pipeline-fuzz suite adds
// the randomized version of this), and the PassManager's verify mode must
// blame exactly the pass that breaks a program — never a pass downstream
// of a pre-existing defect.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "xdp/analysis/verifier.hpp"
#include "xdp/apps/programs.hpp"
#include "xdp/il/parser.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"

namespace xdp::analysis {
namespace {

void expectCleanThroughPipeline(il::Program prog, const std::string& what) {
  {
    VerifyResult r = verifyProgram(prog);
    EXPECT_EQ(r.errors(), 0u)
        << what << " (input)\n"
        << formatDiagnostics(prog, r) << il::printProgram(prog);
  }
  for (const opt::Pass& p : opt::standardPipeline()) {
    prog = p.fn(prog);
    VerifyResult r = verifyProgram(prog);
    EXPECT_EQ(r.errors(), 0u)
        << what << " (after " << p.name << ")\n"
        << formatDiagnostics(prog, r) << il::printProgram(prog);
  }
}

il::Program loadExample(const std::string& name) {
  std::string path = std::string(XDP_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return il::parseProgram(buf.str());
}

TEST(AnalysisPipeline, VecAddAlignedEveryStageClean) {
  expectCleanThroughPipeline(apps::buildVecAdd(apps::vecAddAligned(16, 4)),
                             "vecadd-aligned");
}

TEST(AnalysisPipeline, VecAddMisalignedEveryStageClean) {
  expectCleanThroughPipeline(
      apps::buildVecAdd(apps::vecAddMisaligned(16, 4)), "vecadd-misaligned");
}

TEST(AnalysisPipeline, Fft3dStage1EveryStageClean) {
  expectCleanThroughPipeline(apps::buildFft3dStage1({}), "fft3d-stage1");
}

TEST(AnalysisPipeline, Fft3dDerivedStagesClean) {
  il::Program s1 = apps::buildFft3dStage1({});
  il::Program s2 =
      opt::singleIterationElimination(opt::computeRuleElimination(s1));
  VerifyResult r2 = verifyProgram(s2);
  EXPECT_EQ(r2.errors(), 0u) << formatDiagnostics(s2, r2);
  il::Program s3 = opt::awaitSinking(opt::loopFusion(s2));
  VerifyResult r3 = verifyProgram(s3);
  EXPECT_EQ(r3.errors(), 0u) << formatDiagnostics(s3, r3);
}

TEST(AnalysisPipeline, ExampleProgramsEveryStageClean) {
  for (const char* name : {"vecadd.xdp", "ownership.xdp", "taskfarm.xdp",
                           "jacobi.xdp", "cannon.xdp"}) {
    expectCleanThroughPipeline(loadExample(name), name);
  }
}

TEST(AnalysisPipeline, VerifyEachPassAcceptsTheStandardPipeline) {
  opt::PassManager pm;
  for (const opt::Pass& p : opt::standardPipeline()) pm.add(p);
  pm.verifyEachPass();
  EXPECT_NO_THROW(pm.run(apps::buildVecAdd(apps::vecAddMisaligned(16, 4))));
  EXPECT_NO_THROW(pm.run(loadExample("jacobi.xdp")));
  EXPECT_NO_THROW(pm.run(loadExample("cannon.xdp")));
}

// A "pass" that appends a send no receive will ever match — the verify
// mode must throw and name it.
il::Program breakProgram(const il::Program& prog) {
  il::Program out = prog;
  auto sec = il::secLit({il::TripletExpr{il::intConst(1), il::intConst(1), {}}});
  out.body = il::block({out.body, il::sendData(0, sec)});
  return out;
}

TEST(AnalysisPipeline, VerifyEachPassBlamesTheBreakingPass) {
  opt::PassManager pm;
  pm.add("lower-owner-computes", opt::lowerOwnerComputes);
  pm.add("break-it", breakProgram);
  pm.verifyEachPass();
  il::Program prog = apps::buildVecAdd(apps::vecAddAligned(16, 4));
  try {
    pm.run(prog);
    FAIL() << "expected PassVerifyError";
  } catch (const opt::PassVerifyError& e) {
    EXPECT_EQ(e.passName(), "break-it");
    EXPECT_NE(e.report().find("unmatched-send"), std::string::npos)
        << e.report();
  }
}

TEST(AnalysisPipeline, VerifyEachPassDoesNotBlamePreexistingDefects) {
  // The *input* already has the unmatched send; an identity pass must not
  // be blamed for it.
  opt::PassManager pm;
  pm.add("identity", [](const il::Program& p) { return p; });
  pm.verifyEachPass();
  il::Program broken =
      breakProgram(apps::buildVecAdd(apps::vecAddAligned(16, 4)));
  EXPECT_NO_THROW(pm.run(broken));
}

TEST(AnalysisPipeline, VerifierCountsStatementsForThroughput) {
  il::Program prog = apps::buildVecAdd(apps::vecAddMisaligned(64, 4));
  VerifyResult r = verifyProgram(prog);
  EXPECT_EQ(r.errors(), 0u) << formatDiagnostics(prog, r);
  // 4 pids x (fill + 64-iteration loop) — well over 4*64 statements.
  EXPECT_GT(r.stmtsAnalyzed, 256u);
}

TEST(AnalysisPipeline, StepBudgetAbortsGracefully) {
  il::Program prog = apps::buildVecAdd(apps::vecAddMisaligned(64, 4));
  VerifyOptions opts;
  opts.maxSteps = 10;
  VerifyResult r = verifyProgram(prog, opts);
  EXPECT_FALSE(r.exhaustive);
  // Matching is suppressed on an aborted run: no spurious unmatched-send
  // errors from the half-seen trace.
  EXPECT_EQ(r.errors(), 0u) << formatDiagnostics(prog, r);
}

}  // namespace
}  // namespace xdp::analysis
