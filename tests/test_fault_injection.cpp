// Fault-injection tests: deterministic decision streams, drop/duplicate/
// delay/reorder/stall/crash semantics at the fabric level, the MPI
// non-overtaking guarantee, rendezvous FCFS under perturbation, and a
// whole application (jacobi) surviving a non-lossy fault plan unmodified
// via FaultScope.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "xdp/apps/jacobi.hpp"
#include "xdp/net/fabric.hpp"
#include "xdp/rt/proc.hpp"
#include "xdp/support/check.hpp"

namespace xdp::net {
namespace {

using sec::Index;
using sec::Section;
using sec::Triplet;

Name name(int sym, Index lb, Index ub) {
  return Name{sym, Section{Triplet(lb, ub)}, {}};
}

std::vector<std::byte> bytes(std::initializer_list<int> vs) {
  std::vector<std::byte> out;
  for (int v : vs) out.push_back(static_cast<std::byte>(v));
  return out;
}

void expectEq(const NetStats& a, const NetStats& b) {
  EXPECT_EQ(a.messagesSent, b.messagesSent);
  EXPECT_EQ(a.bytesSent, b.bytesSent);
  EXPECT_EQ(a.messagesReceived, b.messagesReceived);
  EXPECT_EQ(a.bytesReceived, b.bytesReceived);
  EXPECT_EQ(a.rendezvousSends, b.rendezvousSends);
  EXPECT_EQ(a.directSends, b.directSends);
  EXPECT_EQ(a.unexpectedMessages, b.unexpectedMessages);
}

TEST(FaultPlan, LossyPredicate) {
  EXPECT_FALSE(FaultPlan{}.lossy());
  FaultPlan dup;
  dup.dupProb = 1.0;
  dup.delayProb = 1.0;
  dup.reorderProb = 1.0;
  EXPECT_FALSE(dup.lossy());
  FaultPlan drop;
  drop.dropProb = 0.1;
  EXPECT_TRUE(drop.lossy());
  FaultPlan crash;
  crash.crashPids = {0};
  EXPECT_TRUE(crash.lossy());
}

TEST(FaultInjection, ZeroProbabilityPlanBehavesLikeNoPlan) {
  // A completion trace (receiver, payload) of a small mixed workload.
  auto run = [](Fabric& f) {
    std::vector<std::pair<int, std::vector<std::byte>>> trace;
    auto rec = [&](int pid) {
      return [&trace, pid](const Message& m) { trace.emplace_back(pid, m.payload); };
    };
    f.postReceive(1, name(1, 1, 2), TransferKind::Data, rec(1));
    f.send(0, name(1, 1, 2), TransferKind::Data, bytes({1, 2}), 1);
    f.send(0, name(2, 1, 1), TransferKind::Data, bytes({3}), std::nullopt);
    f.postReceive(2, name(2, 1, 1), TransferKind::Data, rec(2));
    f.send(3, name(3, 1, 1), TransferKind::Ownership, {}, 1);
    f.postReceive(1, name(3, 1, 1), TransferKind::Ownership, rec(1));
    return trace;
  };
  Fabric plain(4);
  auto wantTrace = run(plain);

  Fabric faulty(4);
  faulty.setFaultPlan(FaultPlan{});  // installed but all probabilities zero
  EXPECT_TRUE(faulty.hasFaultPlan());
  EXPECT_FALSE(faulty.faultPlanLossy());
  auto gotTrace = run(faulty);

  EXPECT_EQ(gotTrace, wantTrace);
  expectEq(faulty.totalStats(), plain.totalStats());
  const FaultStats fs = faulty.faultStats();
  EXPECT_EQ(fs.dropped, 0u);
  EXPECT_EQ(fs.duplicated, 0u);
  EXPECT_EQ(fs.delayed, 0u);
  EXPECT_EQ(fs.reordered, 0u);
  EXPECT_EQ(fs.stalled, 0u);
  EXPECT_EQ(fs.crashed, 0u);
}

TEST(FaultInjection, DecisionsAreDeterministicUnderFixedSeed) {
  FaultPlan plan;
  plan.seed = 42;
  plan.dupProb = 0.4;
  plan.delayProb = 0.5;
  plan.maxDelay = 7.0;
  plan.reorderProb = 0.4;

  // Same plan, same sends => same delivery trace (receiver, payload,
  // virtual arrival), same net stats, same fault stats — twice over.
  auto run = [&plan] {
    Fabric f(4);
    f.setFaultPlan(plan);
    std::vector<std::tuple<int, std::vector<std::byte>, double>> trace;
    auto rec = [&trace](int pid) {
      return [&trace, pid](const Message& m) {
        trace.emplace_back(pid, m.payload, m.arrival);
      };
    };
    for (int sym = 1; sym <= 8; ++sym)
      f.postReceive(sym % 3 + 1, name(sym, 1, 1), TransferKind::Data,
                    rec(sym % 3 + 1));
    for (int sym = 1; sym <= 8; ++sym)
      f.send(0, name(sym, 1, 1), TransferKind::Data, bytes({sym}),
             sym % 3 + 1);
    f.flushHeldFaults();
    return std::make_tuple(trace, f.totalStats(), f.faultStats());
  };
  auto [t1, n1, f1] = run();
  auto [t2, n2, f2] = run();
  EXPECT_EQ(t1, t2);
  expectEq(n1, n2);
  EXPECT_EQ(f1.duplicated, f2.duplicated);
  EXPECT_EQ(f1.suppressedDuplicates, f2.suppressedDuplicates);
  EXPECT_EQ(f1.delayed, f2.delayed);
  EXPECT_EQ(f1.reordered, f2.reordered);
  EXPECT_EQ(t1.size(), 8u);  // non-lossy: every message completes exactly once
}

TEST(FaultInjection, DroppedMessageIsCountedAndNeverDelivered) {
  FaultPlan plan;
  plan.dropProb = 1.0;
  Fabric f(2);
  f.setFaultPlan(plan);
  EXPECT_TRUE(f.faultPlanLossy());
  int fired = 0;
  f.postReceive(1, name(1, 1, 4), TransferKind::Data,
                [&](const Message&) { ++fired; });
  f.send(0, name(1, 1, 4), TransferKind::Data, bytes({1, 2, 3, 4}), 1);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(f.faultStats().dropped, 1u);
  EXPECT_EQ(f.undeliveredCount(), 0u);     // the fabric lost it, sender paid
  EXPECT_EQ(f.pendingReceiveCount(), 1u);  // the receive hangs forever
  EXPECT_EQ(f.stats(0).messagesSent, 1u);  // sender-side accounting intact
}

TEST(FaultInjection, DuplicateCompletesExactlyOnceWhenReceiveIsPosted) {
  FaultPlan plan;
  plan.dupProb = 1.0;
  Fabric f(2);
  f.setFaultPlan(plan);
  int fired = 0;
  f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                [&](const Message&) { ++fired; });
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({9}), 1);
  EXPECT_EQ(fired, 1);  // the copy was suppressed at delivery
  EXPECT_EQ(f.faultStats().duplicated, 1u);
  EXPECT_EQ(f.faultStats().suppressedDuplicates, 1u);
  EXPECT_EQ(f.undeliveredCount(), 0u);
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
}

TEST(FaultInjection, ParkedDuplicateTwinIsPurgedWhenOriginalCompletes) {
  FaultPlan plan;
  plan.dupProb = 1.0;
  Fabric f(2);
  f.setFaultPlan(plan);
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({5}), 1);
  EXPECT_EQ(f.undeliveredCount(), 2u);  // original + copy parked unexpected
  int fired = 0;
  f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                [&](const Message&) { ++fired; });
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(f.undeliveredCount(), 0u);  // the twin was purged, not leaked
  EXPECT_EQ(f.faultStats().suppressedDuplicates, 1u);
}

TEST(FaultInjection, DelayPushesVirtualArrivalBackDeterministically) {
  auto arrivalOf = [](const FaultPlan* plan) {
    Fabric f(2);
    if (plan) f.setFaultPlan(*plan);
    double arrival = -1.0;
    f.postReceive(1, name(1, 1, 4), TransferKind::Data,
                  [&](const Message& m) { arrival = m.arrival; });
    f.send(0, name(1, 1, 4), TransferKind::Data, bytes({1, 2, 3, 4}), 1);
    return arrival;
  };
  const double base = arrivalOf(nullptr);
  ASSERT_GE(base, 0.0);
  FaultPlan plan;
  plan.delayProb = 1.0;
  plan.maxDelay = 8.0;
  const double delayed = arrivalOf(&plan);
  EXPECT_GT(delayed, base);
  EXPECT_LE(delayed, base + plan.maxDelay);
  EXPECT_DOUBLE_EQ(delayed, arrivalOf(&plan));  // same seed => same delay
  plan.seed = 99;
  const double other = arrivalOf(&plan);
  EXPECT_NE(other, delayed);  // a different stream draws a different delay
}

TEST(FaultInjection, ReorderSwapsAdjacentMessagesWithDifferentNames) {
  FaultPlan plan;
  plan.reorderProb = 1.0;
  Fabric f(2);
  f.setFaultPlan(plan);
  std::vector<int> order;  // symbol ids in completion order
  for (int sym : {1, 2})
    f.postReceive(1, name(sym, 1, 1), TransferKind::Data,
                  [&order, sym](const Message&) { order.push_back(sym); });
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);  // held
  EXPECT_EQ(f.heldFaultCount(), 1u);
  EXPECT_TRUE(order.empty());
  // The next send releases the held one *after* itself: adjacent swap.
  f.send(0, name(2, 1, 1), TransferKind::Data, bytes({2}), 1);
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(f.heldFaultCount(), 0u);
  EXPECT_EQ(f.faultStats().reordered, 1u);
}

TEST(FaultInjection, SameNameMessagesNeverOvertake) {
  // MPI's non-overtaking rule: per-name FIFO survives reordering, so the
  // value each receive observes stays well-defined.
  FaultPlan plan;
  plan.reorderProb = 1.0;
  Fabric f(2);
  f.setFaultPlan(plan);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 2; ++i)
    f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                  [&](const Message& m) { payloads.push_back(m.payload); });
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);  // held
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({2}), 1);
  f.flushHeldFaults();
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], bytes({1}));  // program order preserved
  EXPECT_EQ(payloads[1], bytes({2}));
}

TEST(FaultInjection, RendezvousMatchingStaysFcfsUnderDelayAndReorder) {
  // Paper section 2.7: several processors hold receives outstanding for
  // the SAME name; the matcher serves them first-come-first-served. Fault
  // injection must not change who gets which message.
  FaultPlan plan;
  plan.delayProb = 1.0;
  plan.maxDelay = 50.0;
  plan.reorderProb = 1.0;
  Fabric f(4);
  f.setFaultPlan(plan);
  std::vector<std::pair<int, std::vector<std::byte>>> got;
  for (int pid : {3, 1, 2})  // posting order != pid order
    f.postReceive(pid, name(7, 1, 1), TransferKind::Data,
                  [&got, pid](const Message& m) { got.emplace_back(pid, m.payload); });
  for (int i = 1; i <= 3; ++i)
    f.send(0, name(7, 1, 1), TransferKind::Data, bytes({i}), std::nullopt);
  f.flushHeldFaults();
  ASSERT_EQ(got.size(), 3u);
  // i-th send completes the i-th posted receive, in posting order.
  EXPECT_EQ(got[0], std::make_pair(3, bytes({1})));
  EXPECT_EQ(got[1], std::make_pair(1, bytes({2})));
  EXPECT_EQ(got[2], std::make_pair(2, bytes({3})));
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
  EXPECT_EQ(f.undeliveredCount(), 0u);
}

TEST(FaultInjection, StalledEndpointPaysFixedDelayPerSend) {
  auto arrivalOf = [](const FaultPlan* plan) {
    Fabric f(2);
    if (plan) f.setFaultPlan(*plan);
    double arrival = -1.0;
    f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                  [&](const Message& m) { arrival = m.arrival; });
    f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
    return arrival;
  };
  const double base = arrivalOf(nullptr);
  FaultPlan plan;
  plan.stallPids = {0};
  plan.stallDelay = 3.0;
  EXPECT_DOUBLE_EQ(arrivalOf(&plan), base + 3.0);
  Fabric f(2);
  f.setFaultPlan(plan);
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({2}), 1);
  f.send(1, name(2, 1, 1), TransferKind::Data, bytes({3}), 0);  // not stalled
  EXPECT_EQ(f.faultStats().stalled, 2u);
}

TEST(FaultInjection, CrashedEndpointThrowsFaultAbortAfterItsBudget) {
  FaultPlan plan;
  plan.crashPids = {0};
  plan.crashAfterSends = 2;
  Fabric f(2);
  f.setFaultPlan(plan);
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({2}), 1);
  EXPECT_THROW(f.send(0, name(1, 1, 1), TransferKind::Data, bytes({3}), 1),
               FaultAbort);
  // The endpoint stays dead; other endpoints are unaffected.
  EXPECT_THROW(f.send(0, name(1, 1, 1), TransferKind::Data, bytes({4}), 1),
               FaultAbort);
  EXPECT_NO_THROW(f.send(1, name(2, 1, 1), TransferKind::Data, bytes({5}), 0));
  EXPECT_EQ(f.faultStats().crashed, 1u);
  try {
    f.send(0, name(1, 1, 1), TransferKind::Data, {}, 1);
    FAIL() << "expected FaultAbort";
  } catch (const FaultAbort& e) {
    EXPECT_NE(std::string(e.what()).find("p0"), std::string::npos);
  }
}

TEST(FaultInjection, ReplacingThePlanReleasesHeldMessages) {
  FaultPlan plan;
  plan.reorderProb = 1.0;
  Fabric f(2);
  f.setFaultPlan(plan);
  int fired = 0;
  f.postReceive(1, name(1, 1, 1), TransferKind::Data,
                [&](const Message&) { ++fired; });
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  EXPECT_EQ(f.heldFaultCount(), 1u);
  f.clearFaultPlan();  // must not strand the held message
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(f.hasFaultPlan());
  EXPECT_EQ(f.heldFaultCount(), 0u);
}

TEST(FaultInjection, FaultScopeIsAdoptedByNewFabricsAndRestoredOnExit) {
  FaultPlan plan;
  plan.dupProb = 1.0;
  {
    FaultScope faults(plan);
    Fabric f(2);
    EXPECT_TRUE(f.hasFaultPlan());
    ASSERT_TRUE(currentGlobalFaultPlan().has_value());
    EXPECT_EQ(currentGlobalFaultPlan()->dupProb, 1.0);
    {
      FaultPlan inner;
      inner.dropProb = 0.5;
      FaultScope nested(inner);
      EXPECT_EQ(currentGlobalFaultPlan()->dropProb, 0.5);
    }
    EXPECT_EQ(currentGlobalFaultPlan()->dupProb, 1.0);  // nesting restores
  }
  EXPECT_FALSE(currentGlobalFaultPlan().has_value());
  Fabric f(2);
  EXPECT_FALSE(f.hasFaultPlan());
}

TEST(FaultInjection, NestedScopeFabricKeepsItsPlanWhenScopesUnwind) {
  // A fabric snapshots the innermost plan at construction; the scopes
  // unwinding afterwards must not reach back into it.
  Fabric* made = nullptr;
  std::optional<Fabric> f;
  {
    FaultPlan outer;
    outer.dupProb = 1.0;
    FaultScope faults(outer);
    {
      FaultPlan inner;
      inner.reorderProb = 1.0;
      FaultScope nested(inner);
      f.emplace(2);
      made = &*f;
    }
  }
  ASSERT_NE(made, nullptr);
  EXPECT_TRUE(made->hasFaultPlan());
  // The inner plan (reorder, non-dup) is still live: a send with no
  // posted receive is held back, not duplicated.
  made->send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  EXPECT_EQ(made->heldFaultCount(), 1u);
  EXPECT_EQ(made->faultStats().duplicated, 0u);
  // Hygiene: draining reclaims the held message and nothing survives.
  DrainReport d = made->drain();
  EXPECT_EQ(d.heldFaults, 1u);
  EXPECT_EQ(made->heldFaultCount(), 0u);
  EXPECT_EQ(made->undeliveredCount(), 0u);
  EXPECT_EQ(made->pendingReceiveCount(), 0u);
}

TEST(FaultInjection, CrashWhilePeerIsParkedInAwait) {
  // p1 parks in await on a message only p0 can send; p0's endpoint dies
  // on its first send. The crash surfaces (aggregated under the peer's
  // watchdog-diagnosed deadlock), and teardown leaves no match state.
  rt::RuntimeOptions o;
  o.debugChecks = true;
  o.watchdogMs = 100;
  FaultPlan plan;
  plan.crashPids = {0};
  plan.crashAfterSends = 0;
  o.faultPlan = plan;
  rt::Runtime rt(2, o);
  const Section all{Triplet(1, 8)};
  int A = rt.declareArray<double>(
      "A", all, dist::Distribution(all, {dist::DimSpec::block(2)}));
  EXPECT_THROW(rt.run([&](rt::Proc& p) {
                 if (p.mypid() == 1) {
                   p.recv(A, Section{Triplet(5, 8)}, A, Section{Triplet(1, 4)});
                   p.await(A, Section{Triplet(5, 8)});
                 } else {
                   p.send(A, Section{Triplet(1, 4)}, std::vector<int>{1});
                 }
               }),
               XdpError);
  EXPECT_EQ(rt.fabric().faultStats().crashed, 1u);
  // p1's posted receive is the only survivor; draining reclaims it.
  DrainReport d = rt.fabric().drain();
  EXPECT_GE(d.unmatchedReceives, 1u);
  EXPECT_EQ(rt.fabric().undeliveredCount(), 0u);
  EXPECT_EQ(rt.fabric().pendingReceiveCount(), 0u);
  EXPECT_EQ(rt.fabric().heldFaultCount(), 0u);
}

TEST(FaultInjection, CrashBudgetExhaustsMidBurst) {
  // The crash budget runs out in the middle of a send burst: everything
  // before the budget is delivered normally, everything at/after it
  // aborts, and the fabric stays hygienic for the surviving endpoints.
  FaultPlan plan;
  plan.crashPids = {0};
  plan.crashAfterSends = 2;
  Fabric f(2);
  f.setFaultPlan(plan);
  std::vector<int> got;
  for (int i = 0; i < 4; ++i)
    f.postReceive(1, name(1, i + 1, i + 1), TransferKind::Data,
                  [&, i](const Message&) { got.push_back(i); });
  f.send(0, name(1, 1, 1), TransferKind::Data, bytes({1}), 1);
  f.send(0, name(1, 2, 2), TransferKind::Data, bytes({2}), 1);
  EXPECT_THROW(f.send(0, name(1, 3, 3), TransferKind::Data, bytes({3}), 1),
               FaultAbort);
  EXPECT_THROW(f.send(0, name(1, 4, 4), TransferKind::Data, bytes({4}), 1),
               FaultAbort);
  EXPECT_EQ(got, (std::vector<int>{0, 1}));
  EXPECT_EQ(f.faultStats().crashed, 1u);
  // The two receives the dead endpoint never fed are reclaimed by drain.
  DrainReport d = f.drain();
  EXPECT_EQ(d.unmatchedReceives, 2u);
  EXPECT_EQ(d.unmatchedMessages, 0u);
  EXPECT_EQ(f.pendingReceiveCount(), 0u);
  EXPECT_EQ(f.undeliveredCount(), 0u);
}

TEST(FaultInjection, JacobiSurvivesNonLossyFaultsUnmodified) {
  // The whole point of the injector: an existing application — whose
  // driver builds its own Runtime internally — runs under duplicates,
  // delays and reordering with zero source changes, computes the exact
  // reference answer, and does so deterministically.
  apps::JacobiConfig cfg;
  cfg.rows = 12;
  cfg.cols = 10;
  cfg.nprocs = 4;
  cfg.iterations = 6;
  const auto reference = apps::jacobiReference(cfg);

  FaultPlan plan;
  plan.seed = 7;
  plan.dupProb = 0.3;
  plan.delayProb = 0.4;
  plan.maxDelay = 25.0;
  plan.reorderProb = 0.3;
  FaultScope faults(plan);
  const auto r1 = apps::runJacobi(cfg);
  const auto r2 = apps::runJacobi(cfg);
  EXPECT_EQ(r1.grid, reference);
  EXPECT_EQ(r2.grid, reference);
  expectEq(r1.net, r2.net);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
}

}  // namespace
}  // namespace xdp::net
