// The paper's section 2.2 walkthrough, executable: start from the
// sequential program
//
//     do i = 1, n
//       A[i] = A[i] + B[i]
//     enddo
//
// and apply the XDP pass pipeline one step at a time, printing each
// program in the paper's surface syntax and running it on the simulated
// machine to show what every optimization buys (messages, bytes, guard
// evaluations, modeled time).
#include <cstdio>

#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"

using namespace xdp;

namespace {

void runAndReport(const char* title, const il::Program& prog,
                  const apps::VecAddConfig& cfg, bool print) {
  if (print) {
    std::printf("---- %s ----\n%s\n", title,
                il::printProgram(prog).c_str());
  }
  interp::Interpreter in(prog, {});
  apps::registerFillKernel(in, cfg.seed);
  in.run();
  // Verify against the sequential semantics.
  auto vals = apps::gatherF64(in.runtime(), prog.findSymbol("A"),
                              sec::Section{sec::Triplet(1, cfg.n)});
  for (sec::Index i = 1; i <= cfg.n; ++i) {
    double expect = apps::vecAddExpected(cfg, i);
    if (vals[static_cast<std::size_t>(i - 1)] != expect) {
      std::printf("!! mismatch at %lld\n", static_cast<long long>(i));
      return;
    }
  }
  auto net = in.runtime().fabric().totalStats();
  auto st = in.totalStats();
  std::printf(
      "%-28s msgs %5llu  bytes %7llu  rendezvous %5llu  rules %6llu  "
      "iters %6llu  modeled %.3gs   [results verified]\n",
      title, static_cast<unsigned long long>(net.messagesSent),
      static_cast<unsigned long long>(net.bytesSent),
      static_cast<unsigned long long>(net.rendezvousSends),
      static_cast<unsigned long long>(st.rulesEvaluated),
      static_cast<unsigned long long>(st.loopIterations),
      in.runtime().fabric().makespan());
}

}  // namespace

int main(int argc, char** argv) {
  const bool print = argc > 1 && std::string_view(argv[1]) == "--print";
  const sec::Index n = 64;
  const int P = 4;

  std::printf("== Misaligned case: A (BLOCK), B (CYCLIC), n=%lld, P=%d ==\n",
              static_cast<long long>(n), P);
  auto cfg = apps::vecAddMisaligned(n, P);
  il::Program seq = apps::buildVecAdd(cfg);
  il::Program lowered = opt::lowerOwnerComputes(seq);
  il::Program rte = opt::redundantTransferElimination(lowered);
  il::Program vec = opt::messageVectorization(rte);
  il::Program cre = opt::computeRuleElimination(vec);
  il::Program bound = opt::commBinding(cre);
  if (print)
    std::printf("---- sequential input ----\n%s\n",
                il::printProgram(seq).c_str());
  runAndReport("owner-computes (lowered)", lowered, cfg, print);
  runAndReport("+ redundant-transfer-elim", rte, cfg, print);
  runAndReport("+ message-vectorization", vec, cfg, print);
  runAndReport("+ compute-rule-elim", cre, cfg, print);
  runAndReport("+ comm-binding", bound, cfg, print);

  std::printf("\n== Aligned case: A and B both (BLOCK) ==\n");
  auto acfg = apps::vecAddAligned(n, P);
  il::Program aLow = opt::lowerOwnerComputes(apps::buildVecAdd(acfg));
  il::Program aRte = opt::redundantTransferElimination(aLow);
  il::Program aCre = opt::computeRuleElimination(aRte);
  runAndReport("owner-computes (lowered)", aLow, acfg, false);
  runAndReport("+ redundant-transfer-elim", aRte, acfg, false);
  runAndReport("+ compute-rule-elim", aCre, acfg, false);

  std::printf("\n(re-run with --print to see each program in the paper's"
              " notation)\n");
  return 0;
}
