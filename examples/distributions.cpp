// Reproduces the paper's Figure 2 and Figure 3 as console output:
//
//   * Figure 2 — the XDP symbol table for A[1:4,1:8] (*,BLOCK) and
//     B[1:16,1:16] (BLOCK,CYCLIC) on 4 processors, with segment
//     descriptors.
//   * Figure 3 — owner maps and processor P3's local segmentations of a
//     4x8 array under (BLOCK,BLOCK) and (BLOCK,CYCLIC), for two segment
//     shapes each.
#include <cstdio>

#include "xdp/rt/dump.hpp"
#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using dist::SegmentShape;
using sec::Section;
using sec::Triplet;

int main() {
  // ---- Figure 2 -----------------------------------------------------------
  std::printf("==== Figure 2: XDP symbol table structure ====\n\n");
  rt::Runtime runtime(4);
  Section gA{Triplet(1, 4), Triplet(1, 8)};
  runtime.declareArray<double>(
      "A", gA, Distribution(gA, {DimSpec::collapsed(), DimSpec::block(4)}),
      SegmentShape::of({2, 1}));
  Section gB{Triplet(1, 16), Triplet(1, 16)};
  runtime.declareArray<double>(
      "B", gB, Distribution(gB, {DimSpec::block(2), DimSpec::cyclic(2)}),
      SegmentShape::of({4, 2}));
  runtime.run([](rt::Proc&) {});
  std::printf("%s\n", rt::dumpSymbolTable(runtime.table(3)).c_str());

  // ---- Figure 3 -----------------------------------------------------------
  std::printf("==== Figure 3: distributions and local segmentations ====\n\n");
  Section g48{Triplet(1, 4), Triplet(1, 8)};
  struct Case {
    const char* title;
    Distribution dist;
    SegmentShape shapeA, shapeB;
  };
  Case cases[] = {
      {"(a) (BLOCK, BLOCK) on a 2x2 grid",
       Distribution(g48, {DimSpec::block(2), DimSpec::block(2)}),
       SegmentShape::of({2, 1}), SegmentShape::of({1, 2})},
      {"(b) (BLOCK, CYCLIC) on a 2x2 grid",
       Distribution(g48, {DimSpec::block(2), DimSpec::cyclic(2)}),
       SegmentShape::of({2, 2}), SegmentShape::of({1, 4})},
  };
  // Note: the paper numbers processors P1..P4; its "P3" (third processor,
  // owning rows 1:2 x columns 5:8) is pid 2 in our 0-based numbering.
  for (const Case& c : cases) {
    std::printf("---- %s (paper's P3 = our p2) ----\n", c.title);
    rt::SymbolDecl decl;
    decl.index = 0;
    decl.name = "C";
    decl.global = g48;
    decl.dist = c.dist;
    std::printf("%s\n", rt::dumpOwnerGrid(decl).c_str());
    decl.segShape = c.shapeA;
    std::printf("%s\n", rt::dumpSegmentGrid(decl, 2).c_str());
    decl.segShape = c.shapeB;
    std::printf("%s\n", rt::dumpSegmentGrid(decl, 2).c_str());
  }

  // ---- The iown() walk-through of section 3.1 -----------------------------
  std::printf("==== Section 3.1: evaluating iown(C[1,5:7]) on the paper's "
              "P3 (our p2) ====\n\n");
  rt::Runtime rt2(4);
  const int C = rt2.declareArray<double>(
      "C", g48, Distribution(g48, {DimSpec::block(2), DimSpec::block(2)}),
      SegmentShape::of({2, 1}));
  rt2.run([&](rt::Proc& p) {
    if (p.mypid() != 2) return;  // owns C[1:2,5:8], the paper's P3
    Section query{Triplet(1), Triplet(5, 7)};
    std::printf("iown(C[1,5:7])   = %s   (paper: true)\n",
                p.iown(C, query) ? "true" : "false");
    Section beyond{Triplet(1), Triplet(4, 7)};
    std::printf("iown(C[1,4:7])   = %s   (column 4 belongs elsewhere)\n",
                p.iown(C, beyond) ? "true" : "false");
  });
  return 0;
}
