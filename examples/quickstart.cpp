// Quickstart: the XDP runtime in ~60 lines.
//
// Four simulated processors share a BLOCK-distributed vector. Each
// processor fills its own block, then every processor fetches its right
// neighbour's first element with the XDP send/receive statements of
// Figure 1 and verifies the intrinsics along the way.
//
// Build & run:   ./examples/quickstart
#include <cstdio>

#include "xdp/rt/dump.hpp"
#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Point;
using sec::Section;
using sec::Triplet;

int main() {
  constexpr int P = 4;
  constexpr sec::Index N = 16;

  rt::RuntimeOptions opts;
  opts.debugChecks = true;  // validate the Figure-1 usage rules as we go
  rt::Runtime runtime(P, opts);

  // A[1:16] distributed (BLOCK): processor p owns A[4p+1 : 4p+4].
  Section global{Triplet(1, N)};
  const int A = runtime.declareArray<double>(
      "A", global, Distribution(global, {DimSpec::block(P)}));
  // One inbox element per processor, so H[mypid] is local everywhere.
  Section gp{Triplet(0, P - 1)};
  const int H = runtime.declareArray<double>(
      "H", gp, Distribution(gp, {DimSpec::block(P)}));

  runtime.run([&](rt::Proc& p) {
    const int me = p.mypid();
    Section mine{Triplet(4 * me + 1, 4 * me + 4)};

    // Intrinsics: iown, mylb, myub (Figure 1).
    if (!p.iown(A, mine)) return;  // never happens: we own our block
    std::vector<double> block{me + 0.25, me + 0.5, me + 0.75, me + 1.0};
    p.write<double>(A, mine, block);

    // mylb/myub give the locally owned bounds — the loop-localization
    // primitive the optimizer uses.
    std::printf("p%d owns A[%lld:%lld]\n", me,
                static_cast<long long>(p.mylb(A, global, 0)),
                static_cast<long long>(p.myub(A, global, 0)));

    p.barrier();  // make sure every block is written

    // Fetch the right neighbour's first element:
    //   neighbour executes  "A[first] -> {me}"   (E -> S)
    //   we execute          "H[mypid] <- A[first]" then await(H[mypid]).
    const int right = (me + 1) % P;
    Section theirFirst{Triplet(4 * right + 1)};
    Section myFirst{Triplet(4 * me + 1)};
    Section inbox{Triplet(me)};

    p.send(A, myFirst, std::vector<int>{(me + P - 1) % P});
    p.recv(H, inbox, A, theirFirst);
    if (p.await(H, inbox)) {
      double got = p.get<double>(H, Point{me});
      std::printf("p%d received neighbour value %.2f (expected %.2f)\n", me,
                  got, right + 0.25);
    }
  });

  // The run-time symbol table of processor 2 — the paper's Figure 2.
  std::printf("\n%s\n", rt::dumpSymbolTable(runtime.table(2)).c_str());

  auto stats = runtime.fabric().totalStats();
  std::printf("traffic: %llu messages, %llu bytes, modeled makespan %.3g\n",
              static_cast<unsigned long long>(stats.messagesSent),
              static_cast<unsigned long long>(stats.bytesSent),
              runtime.fabric().makespan());
  return 0;
}
