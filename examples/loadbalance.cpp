// Load balancing with XDP, three ways (paper sections 2.6 and 2.7), with
// *real* work and wall-clock measurement — the simulated processors are
// real threads, so dynamic schemes really balance:
//
//   1. Static owner-computes: tasks are BLOCK-distributed; each processor
//      executes the tasks it owns. Skewed costs leave most processors
//      idle while one grinds.
//
//   2. Dynamic task farm (2.7): "the owner of a particular variable
//      initiates a sequence of sends of values of the variable, each
//      value representing a certain job to be performed. Meanwhile, any
//      processor that was otherwise idle could initiate a receive of that
//      variable, and then perform the indicated job." All sends carry the
//      *same name*; every idle worker posts a receive for that name, and
//      the matchmaker pairs them first-come-first-served — whichever
//      worker is free takes the next job. Poison-pill values terminate.
//
//   3. Ownership migration (2.6): "load balancing can be implemented by
//      migrating ownership of data while still running the same SPMD
//      program on each processor." A greedy rebalance ships task
//      ownership once; the unchanged owner-computes loop then runs each
//      task at its new home.
#include <chrono>
#include <thread>
#include <cstdio>

#include "xdp/apps/workloads.hpp"
#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

namespace {

constexpr int kProcs = 4;
constexpr int kTasks = 64;

/// Task work for `seconds`. Sleeping (rather than spinning) stands in for
/// compute: it occupies the simulated processor for the right wall-clock
/// duration while letting other simulated processors run concurrently even
/// on a single-core host.
void spinFor(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

template <typename Fn>
double wallTime(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double staticSchedule(const std::vector<double>& costs) {
  rt::Runtime runtime(kProcs);
  Section g{Triplet(1, kTasks)};
  const int W = runtime.declareArray<double>(
      "W", g, Distribution(g, {DimSpec::block(kProcs)}),
      dist::SegmentShape::of({1}));
  return wallTime([&] {
    runtime.run([&](rt::Proc& p) {
      for (Index t = 1; t <= kTasks; ++t) {
        Section st{Triplet(t)};
        if (p.iown(W, st))
          spinFor(costs[static_cast<std::size_t>(t - 1)]);
      }
    });
  });
}

double taskFarm(const std::vector<double>& costs) {
  rt::Runtime runtime(kProcs);
  Section g{Triplet(0, 0)};  // the queue variable: a single element
  const int W = runtime.declareArray<double>(
      "W", g, Distribution(g, {DimSpec::block(1)}),
      dist::SegmentShape::of({1}));
  Section gp{Triplet(0, kProcs - 1)};
  const int M = runtime.declareArray<double>(
      "M", gp, Distribution(gp, {DimSpec::block(kProcs)}));
  return wallTime([&] {
    runtime.run([&](rt::Proc& p) {
      Section w0{Triplet(0)};
      if (p.mypid() == 0) {
        // Publish every job as a send of the same name W[0]; then one
        // poison pill (-1) per worker. Destinations unspecified: the
        // matchmaker hands each to the first idle receiver (FCFS).
        for (int t = 0; t < kTasks; ++t) {
          p.set<double>(W, Point{0}, costs[static_cast<std::size_t>(t)]);
          p.send(W, w0);
        }
        for (int w = 0; w < kProcs; ++w) {
          p.set<double>(W, Point{0}, -1.0);
          p.send(W, w0);
        }
      }
      // Every processor (p0 included) is a worker: pull until poisoned.
      Section slot{Triplet(p.mypid())};
      while (true) {
        p.recv(M, slot, W, w0);
        if (!p.await(M, slot)) break;
        double job = p.get<double>(M, Point{p.mypid()});
        if (job < 0) break;
        spinFor(job);
      }
    });
  });
}

double ownershipMigration(const std::vector<double>& costs) {
  rt::Runtime runtime(kProcs);
  Section g{Triplet(1, kTasks)};
  const int W = runtime.declareArray<double>(
      "W", g, Distribution(g, {DimSpec::block(kProcs)}),
      dist::SegmentShape::of({1}));
  // Greedy LPT rebalance — the "compiler/runtime policy" choosing where
  // each task's ownership should live.
  std::vector<int> target(kTasks);
  {
    std::vector<std::pair<double, int>> order;
    for (int t = 0; t < kTasks; ++t)
      order.emplace_back(costs[static_cast<std::size_t>(t)], t);
    std::sort(order.rbegin(), order.rend());
    std::vector<double> load(kProcs, 0.0);
    for (auto& [c, t] : order) {
      int best = 0;
      for (int q = 1; q < kProcs; ++q)
        if (load[static_cast<std::size_t>(q)] <
            load[static_cast<std::size_t>(best)])
          best = q;
      target[static_cast<std::size_t>(t)] = best;
      load[static_cast<std::size_t>(best)] += c;
    }
  }
  const Index blk = kTasks / kProcs;
  return wallTime([&] {
    runtime.run([&](rt::Proc& p) {
      const int me = p.mypid();
      for (Index t = 1; t <= kTasks; ++t) {
        Section st{Triplet(t)};
        const int from = static_cast<int>((t - 1) / blk);
        const int to = target[static_cast<std::size_t>(t - 1)];
        if (from == to) continue;
        if (me == from) p.sendOwnership(W, st, true, std::vector<int>{to});
        if (me == to) p.recvOwnership(W, st, true);
      }
      // The same owner-computes loop as the static schedule: ownership,
      // not code, decides who runs what.
      for (Index t = 1; t <= kTasks; ++t) {
        Section st{Triplet(t)};
        if (p.await(W, st))
          spinFor(costs[static_cast<std::size_t>(t - 1)]);
      }
    });
  });
}

}  // namespace

int main() {
  const double cost0 = 4e-4;  // ~26ms total work, ideal ~6.4ms on 4 procs
  std::printf("%-8s %12s %12s %12s   (wall seconds, lower is better)\n",
              "skew", "static", "task farm", "migration");
  for (double skew : {1.0, 1.05, 1.1, 1.2}) {
    auto costs = apps::skewedCosts(kTasks, cost0, skew, 42);
    std::printf("%-8.2f %12.4f %12.4f %12.4f\n", skew,
                staticSchedule(costs), taskFarm(costs),
                ownershipMigration(costs));
  }
  std::printf("\nideal balanced time = %.4f\n", kTasks * cost0 / kProcs);
  return 0;
}
