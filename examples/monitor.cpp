// The debugger scenario of paper section 2.6: "a debugger could allow the
// user to input an ownership transfer command that moves exclusive
// ownership of a variable (and hence the permission to execute certain
// SPMD code segments, such as a print command that outputs the value of
// local data structures to the user's screen) from one processor to
// another. Thus, processors can be selectively monitored by simply
// transferring ownership of this variable."
//
// Every processor runs the same program: a work loop with a guarded probe
// statement. The probe's guard is iown(SPY) — a one-element token array.
// Moving the token's ownership moves which processor prints, with zero
// code changes and zero interference with the others.
#include <cstdio>
#include <mutex>

#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Point;
using sec::Section;
using sec::Triplet;

int main() {
  constexpr int P = 4;
  constexpr int kSteps = 4;

  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  rt::Runtime runtime(P, opts);

  // Each processor's local state (one counter per processor).
  Section gs{Triplet(0, P - 1)};
  const int STATE = runtime.declareArray<double>(
      "STATE", gs, Distribution(gs, {DimSpec::block(P)}));
  // The monitor token: one element, initially owned by processor 0.
  Section gt{Triplet(0, 0)};
  const int SPY = runtime.declareArray<double>(
      "SPY", gt, Distribution(gt, {DimSpec::block(1)}));

  std::mutex printMu;

  runtime.run([&](rt::Proc& p) {
    const int me = p.mypid();
    Section token{Triplet(0)};
    Section mine{Triplet(me)};
    for (int step = 0; step < kSteps; ++step) {
      // ... the "application": update local state ...
      p.set<double>(STATE, Point{me}, me * 100.0 + step);
      p.compute(1e-4);

      // The probe. Identical statement on every processor; only the
      // owner of SPY executes it (generalized compute rule).
      if (p.await(SPY, token)) {
        std::lock_guard lk(printMu);
        std::printf("[monitor] step %d: watching p%d, STATE=%.0f\n", step,
                    me, p.get<double>(STATE, Point{me}));
      }
      p.barrier();

      // "User input": after each step, move the token to the next
      // processor — ownership migrates, the program does not change.
      const int holder = step % P;
      const int next = (step + 1) % P;
      if (me == holder)
        p.sendOwnership(SPY, token, /*withValue=*/true,
                        std::vector<int>{next});
      if (me == next) p.recvOwnership(SPY, token, /*withValue=*/true);
      p.barrier();
    }
  });

  std::printf("\nFinal traffic: %llu ownership transfers, %llu bytes.\n",
              static_cast<unsigned long long>(
                  runtime.fabric().totalStats().ownershipTransfers),
              static_cast<unsigned long long>(
                  runtime.fabric().totalStats().bytesSent));
  return 0;
}
