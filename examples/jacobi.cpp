// 2-D Jacobi relaxation with XDP halo exchange — the workload family the
// paper's target compilers (Fortran D, SUPERB, Kali, ...) were built for.
// Compares the naive element-wise halo plan against row-section messages
// (message vectorization) and bound vs matchmaker routing (delayed
// communication binding) — the two §2.2/§3.2 optimizations on a real
// stencil.
#include <cstdio>

#include "xdp/apps/jacobi.hpp"

using namespace xdp;

int main() {
  apps::JacobiConfig base;
  base.rows = 64;
  base.cols = 64;
  base.nprocs = 4;
  base.iterations = 10;
  base.flopCost = 1e-8;

  auto expect = apps::jacobiReference(base);

  struct Variant {
    const char* name;
    apps::HaloPlan plan;
    bool bind;
  };
  Variant variants[] = {
      {"element-wise, matchmaker", apps::HaloPlan::ElementWise, false},
      {"element-wise, bound", apps::HaloPlan::ElementWise, true},
      {"row-sections, matchmaker", apps::HaloPlan::RowSections, false},
      {"row-sections, bound", apps::HaloPlan::RowSections, true},
  };

  std::printf("Jacobi %lldx%lld, %d iterations over %d processors\n\n",
              static_cast<long long>(base.rows),
              static_cast<long long>(base.cols), base.iterations,
              base.nprocs);
  std::printf("%-28s %8s %10s %12s %10s\n", "halo plan", "msgs", "bytes",
              "rendezvous", "modeled");
  for (const Variant& v : variants) {
    apps::JacobiConfig cfg = base;
    cfg.plan = v.plan;
    cfg.bindDestinations = v.bind;
    auto r = apps::runJacobi(cfg);
    bool ok = r.grid.size() == expect.size();
    for (std::size_t i = 0; ok && i < expect.size(); ++i)
      ok = r.grid[i] == expect[i];
    std::printf("%-28s %8llu %10llu %12llu %9.4gs %s\n", v.name,
                static_cast<unsigned long long>(r.net.messagesSent),
                static_cast<unsigned long long>(r.net.bytesSent),
                static_cast<unsigned long long>(r.net.rendezvousSends),
                r.makespan, ok ? "[verified]" : "[MISMATCH]");
  }
  std::printf("\nAll variants compute identical grids; the halo *plan* — "
              "which the XDP compiler chooses — decides the message count "
              "and the matchmaker traffic.\n");
  return 0;
}
