// Cannon's matrix multiply on a q x q grid, with the block shifts done two
// ways: conventional value messages into auxiliary buffers, or XDP
// ownership migration ("-=>"/"<=-") with no auxiliary storage at all —
// the freed slots of the outgoing block hold the incoming one (paper
// section 2.6).
#include <cstdio>

#include "xdp/apps/cannon.hpp"

using namespace xdp;

int main() {
  apps::CannonConfig cfg;
  cfg.n = 64;
  cfg.q = 4;
  cfg.flopCost = 1e-8;

  auto expect = apps::cannonReference(cfg);

  std::printf("Cannon's algorithm: C = A*B, %lldx%lld on a %dx%d grid\n\n",
              static_cast<long long>(cfg.n), static_cast<long long>(cfg.n),
              cfg.q, cfg.q);
  std::printf("%-22s %8s %10s %16s %12s\n", "shift plan", "msgs", "bytes",
              "peak elems/proc", "modeled");
  for (auto plan :
       {apps::ShiftPlan::DataShift, apps::ShiftPlan::OwnershipShift}) {
    cfg.plan = plan;
    auto r = apps::runCannon(cfg);
    bool ok = true;
    for (std::size_t i = 0; ok && i < expect.size(); ++i)
      ok = std::abs(r.c[i] - expect[i]) < 1e-9;
    std::printf("%-22s %8llu %10llu %16zu %11.4gs %s\n",
                plan == apps::ShiftPlan::DataShift ? "value messages"
                                                   : "ownership migration",
                static_cast<unsigned long long>(r.net.messagesSent),
                static_cast<unsigned long long>(r.net.bytesSent),
                r.peakElemsPerProc, r.makespan,
                ok ? "[verified]" : "[MISMATCH]");
  }
  std::printf("\nSame traffic either way; the ownership plan simply has no "
              "in-buffers — the paper's storage-reuse benefit, measured in "
              "the peak column.\n");
  return 0;
}
