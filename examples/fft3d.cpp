// The paper's section 4 example: a 3-D FFT whose middle step redistributes
// the array from (*,*,BLOCK) to (*,BLOCK,*) by transferring *ownership*
// (with values) of one plane at a time — "-=>" / "<=-" statements — so
// that every 1-D FFT sweep runs without communication.
//
// The three program versions of the paper are derived by the optimizer:
//   stage 1  the initial guarded IL+XDP program
//   stage 2  + compute-rule elimination + single-iteration elimination
//   stage 3  + loop fusion (pipelines the transfer) + await sinking
//
// Run with --print to see each stage in the paper's notation.
#include <cmath>
#include <cstdio>
#include <string_view>

#include "xdp/apps/programs.hpp"
#include "xdp/il/printer.hpp"
#include "xdp/opt/passes.hpp"

using namespace xdp;

namespace {

void runStage(const char* title, const il::Program& prog,
              const apps::Fft3dConfig& cfg,
              const std::vector<apps::Complex>& expect, bool print) {
  if (print)
    std::printf("---- %s ----\n%s\n", title, il::printProgram(prog).c_str());
  interp::Interpreter in(prog, {});
  apps::registerFillKernel(in, cfg.seed);
  apps::registerFftKernels(in, cfg.flopCost);
  in.run();
  sec::Section g{sec::Triplet(1, cfg.n), sec::Triplet(1, cfg.n),
                 sec::Triplet(1, cfg.n)};
  auto vals = apps::gatherC128(in.runtime(), 0, g);
  double maxErr = 0;
  for (std::size_t i = 0; i < vals.size(); ++i)
    maxErr = std::max(maxErr, std::abs(vals[i] - expect[i]));
  auto net = in.runtime().fabric().totalStats();
  double sum = 0;
  for (int p = 0; p < cfg.nprocs; ++p)
    sum += in.runtime().fabric().clock(p);
  std::printf(
      "%-22s msgs %4llu  ownership %4llu  bytes %8llu  makespan %.4g  "
      "avg-finish %.4g  max|err| %.2e\n",
      title, static_cast<unsigned long long>(net.messagesSent),
      static_cast<unsigned long long>(net.ownershipTransfers),
      static_cast<unsigned long long>(net.bytesSent),
      in.runtime().fabric().makespan(), sum / cfg.nprocs, maxErr);
}

}  // namespace

int main(int argc, char** argv) {
  const bool print = argc > 1 && std::string_view(argv[1]) == "--print";

  apps::Fft3dConfig cfg;
  cfg.n = 16;
  cfg.nprocs = 4;
  cfg.flopCost = 2e-6;
  cfg.skewCost = 4e-4;  // processor 0 is slower: fusion's best case

  std::printf("3-D FFT, N=%lld^3 over %d processors; redistribution "
              "(*,*,BLOCK) -> (*,BLOCK,*) via ownership transfer\n\n",
              static_cast<long long>(cfg.n), cfg.nprocs);

  il::Program s1 = apps::buildFft3dStage1(cfg);
  il::Program s2 =
      opt::singleIterationElimination(opt::computeRuleElimination(s1));
  il::Program s3 = opt::awaitSinking(opt::loopFusion(s2));
  il::Program s3b = opt::commBinding(s3);

  auto expect = apps::fft3dReference(cfg);
  runStage("stage1 (guarded)", s1, cfg, expect, print);
  runStage("stage2 (+CRE,+SIE)", s2, cfg, expect, print);
  runStage("stage3 (+fuse,+sink)", s3, cfg, expect, print);
  runStage("stage3 + binding", s3b, cfg, expect, print);

  std::printf("\nNotes: message/byte counts are identical across stages — "
              "the paper's section-4 optimizations restructure *when* "
              "transfers are initiated, not how much moves. Fusion lowers "
              "the average finish time under the skewed load; binding "
              "removes the matchmaker hop from every transfer.\n");
  return 0;
}
