// Fault injection and the hang watchdog, end to end.
//
// Three acts:
//   1. jacobi, clean — the paper's perfectly reliable machine.
//   2. jacobi under a non-lossy fault plan (duplicates + delays +
//      reordering), enabled via net::FaultScope with ZERO changes to the
//      application: the answer is bit-identical to the reference, and the
//      injector's counters show how much abuse the run absorbed.
//   3. a deliberately broken program (a receive nobody answers) under a
//      lossy plan: instead of hanging, the watchdog diagnoses quiescence
//      and every blocked wait fails with a DeadlockError whose report
//      names the blocked processors, the unmatched names and the owning
//      sections.
#include <cstdio>

#include "xdp/apps/jacobi.hpp"
#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Section;
using sec::Triplet;

int main() {
  apps::JacobiConfig cfg;
  cfg.rows = 24;
  cfg.cols = 24;
  cfg.nprocs = 4;
  cfg.iterations = 8;

  // Act 1: the reliable machine.
  const auto clean = apps::runJacobi(cfg);
  std::printf("clean run:   %llu messages, makespan %.1f\n",
              static_cast<unsigned long long>(clean.net.messagesSent),
              clean.makespan);

  // Act 2: same program, hostile transport.
  net::FaultPlan plan;
  plan.seed = 2026;
  plan.dupProb = 0.25;
  plan.delayProb = 0.30;
  plan.maxDelay = 50.0;
  plan.reorderProb = 0.25;
  {
    net::FaultScope faults(plan);
    const auto faulty = apps::runJacobi(cfg);
    const bool exact = faulty.grid == apps::jacobiReference(cfg);
    std::printf("faulted run: %llu messages, makespan %.1f, %s\n",
                static_cast<unsigned long long>(faulty.net.messagesSent),
                faulty.makespan,
                exact ? "result EXACT despite faults" : "RESULT CORRUPTED");
  }

  // Act 3: a hang, diagnosed. Drop every message and wait for one.
  rt::RuntimeOptions opts;
  opts.debugChecks = true;
  opts.watchdogMs = 200;  // overrides XDP_WATCHDOG_MS / the 10 s default
  net::FaultPlan lossy;
  lossy.dropProb = 1.0;
  opts.faultPlan = lossy;
  rt::Runtime runtime(2, opts);
  Section g{Triplet(1, 8)};
  const int A = runtime.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(2)}));
  try {
    runtime.run([&](rt::Proc& p) {
      if (p.mypid() == 0) {
        p.send(A, Section{Triplet(1, 4)}, std::vector<int>{1});
      } else {
        p.recv(A, Section{Triplet(5, 8)}, A, Section{Triplet(1, 4)});
        p.await(A, Section{Triplet(5, 8)});  // the message was dropped
      }
    });
    std::printf("unexpectedly completed?\n");
    return 1;
  } catch (const DeadlockError& e) {
    std::printf("\nwatchdog fired: %s\n%s", e.summary().c_str(),
                e.report().c_str());
  }
  return 0;
}
