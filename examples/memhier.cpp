// Memory-hierarchy optimization with XDP (paper section 6: "The
// applicability of XDP is quite general ... it can be used to optimize
// data transfers across different levels of a memory hierarchy").
//
// Model: processor 0 is "main memory" and owns every tile of a large
// array; processor 1 is the "compute engine + cache" with capacity for a
// few tiles. Fetching a tile = ownership+value transfer into the cache;
// eviction = ownership+value transfer back. XDP's iown() is exactly the
// cache-residency test, so the same guarded SPMD code works for any
// schedule — only the transfer traffic changes.
//
// The workload touches tiles in passes with temporal locality; we compare
//   * naive schedule: touch tiles in the given order, LRU-evict on misses
//   * tiled (reuse-aware) schedule: the same touches grouped per tile
// and report ownership transfers ("cache miss traffic") for each.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <vector>

#include "xdp/rt/proc.hpp"

using namespace xdp;
using dist::DimSpec;
using dist::Distribution;
using sec::Index;
using sec::Section;
using sec::Triplet;

namespace {

constexpr Index kTiles = 16;
constexpr Index kTileElems = 64;
constexpr int kCacheTiles = 4;

Section tileSec(Index t) {
  return Section{Triplet(t * kTileElems + 1, (t + 1) * kTileElems)};
}

/// Run one schedule; returns (ownership transfers, modeled time).
std::pair<std::uint64_t, double> run(const std::vector<Index>& touches) {
  rt::Runtime runtime(2);
  Section g{Triplet(1, kTiles * kTileElems)};
  // Everything starts in "main memory" (processor 0).
  const int A = runtime.declareArray<double>(
      "A", g, Distribution(g, {DimSpec::block(1)}),
      dist::SegmentShape::of({kTileElems}));

  runtime.run([&](rt::Proc& p) {
    std::deque<Index> lru;  // tiles resident in the cache (front = oldest)
    for (Index t : touches) {
      Section ts = tileSec(t);
      if (p.mypid() == 1) {
        // Cache side: iown() is the residency probe — the same guarded
        // statement a compiler would emit.
        if (!p.iown(A, ts)) {
          if (static_cast<int>(lru.size()) == kCacheTiles) {
            Index victim = lru.front();
            lru.pop_front();
            p.sendOwnership(A, tileSec(victim), /*withValue=*/true,
                            std::vector<int>{0});  // write back
          }
          p.recvOwnership(A, ts, /*withValue=*/true);  // fetch
          p.await(A, ts);
          lru.push_back(t);
        } else {
          // Hit: refresh LRU position.
          lru.erase(std::find(lru.begin(), lru.end(), t));
          lru.push_back(t);
        }
        // "Compute" on the resident tile.
        p.compute(1e-6 * static_cast<double>(kTileElems));
        auto vals = p.read<double>(A, ts);
        vals[0] += 1.0;
        p.write<double>(A, ts, vals);
      } else {
        // Memory side mirrors the protocol deterministically.
        std::deque<Index>& mirror = lru;
        if (std::find(mirror.begin(), mirror.end(), t) == mirror.end()) {
          if (static_cast<int>(mirror.size()) == kCacheTiles) {
            Index victim = mirror.front();
            mirror.pop_front();
            p.recvOwnership(A, tileSec(victim), /*withValue=*/true);
            p.await(A, tileSec(victim));
          }
          p.sendOwnership(A, ts, /*withValue=*/true, std::vector<int>{1});
          mirror.push_back(t);
        } else {
          mirror.erase(std::find(mirror.begin(), mirror.end(), t));
          mirror.push_back(t);
        }
      }
    }
  });
  return {runtime.fabric().totalStats().ownershipTransfers,
          runtime.fabric().makespan()};
}

}  // namespace

int main() {
  // Workload: 4 passes over 8 tiles — plenty of reuse if scheduled well.
  std::vector<Index> naive;
  for (int pass = 0; pass < 4; ++pass)
    for (Index t = 0; t < 8; ++t) naive.push_back(t);
  // Reuse-aware: group all passes of one cache-load's worth of tiles.
  std::vector<Index> tiled;
  for (Index base = 0; base < 8; base += kCacheTiles)
    for (int pass = 0; pass < 4; ++pass)
      for (Index t = base; t < base + kCacheTiles; ++t) tiled.push_back(t);

  auto [naiveXfers, naiveTime] = run(naive);
  auto [tiledXfers, tiledTime] = run(tiled);

  std::printf("cache: %d tiles of %lld elements; workload: 4 passes over 8 "
              "tiles\n\n",
              kCacheTiles, static_cast<long long>(kTileElems));
  std::printf("%-24s %20s %14s\n", "schedule", "ownership transfers",
              "modeled time");
  std::printf("%-24s %20llu %13.4gs\n", "naive (round-robin)",
              static_cast<unsigned long long>(naiveXfers), naiveTime);
  std::printf("%-24s %20llu %13.4gs\n", "tiled (reuse-aware)",
              static_cast<unsigned long long>(tiledXfers), tiledTime);
  std::printf("\nSame guarded SPMD program both times — iown() is the "
              "residency test, ownership transfer is the miss. Only the "
              "schedule (which a compiler chooses) differs.\n");
  return 0;
}
